"""Turn a JSONL trace into per-stage latency tables.

The headline table decomposes every network hop the way the paper's NIC
argument does (and exactly as ``repro/net/network.py`` models it):

    NIC-queue wait → serialization (tx) → propagation → CPU-queue wait → CPU

so a clan run visibly spends less time in ``nic_wait`` than the baseline at
the same load.  Further tables summarize RBC phases, consensus rounds and
commits, client-observed latency, and simulator throughput.

Use via the CLI (``python -m repro trace fig5_smoke --out trace.jsonl``) or
standalone::

    python -m repro.bench.trace_report trace.jsonl
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict
from typing import Any, Iterable

from ..obs.metrics import Histogram
from ..obs.tracer import META_TYPE, TraceFile, Tracer
from .reporting import format_table

#: The per-hop stages, in pipeline order (attr names on net.hop spans).
HOP_STAGES = ("nic_wait", "tx", "prop", "cpu_wait", "cpu")


def load_trace(path: str) -> list[dict[str, Any]]:
    """Load a JSONL trace file as raw record dicts (small files).

    Long sweeps should stream via :class:`~repro.obs.tracer.TraceFile`
    instead — every table in this module accepts it directly.
    """
    return Tracer.read_jsonl_dicts(path)


def _records_as_dicts(records: Iterable[Any]) -> Iterable[dict[str, Any]]:
    """Accept raw dicts, typed records, a Tracer, or a streaming TraceFile.

    ``TraceFile`` is returned as-is: it re-reads the file on every iteration,
    so each aggregation pass runs in constant memory.
    """
    if isinstance(records, Tracer):
        return records.to_dicts()
    if isinstance(records, TraceFile):
        return records
    rows = []
    for r in records:
        row = r if isinstance(r, dict) else r.to_dict()
        if row.get("type") != META_TYPE:
            rows.append(row)
    return rows


def dropped_info(records: Iterable[Any]) -> dict[str, Any] | None:
    """Ring-buffer accounting for a Tracer or TraceFile source, else None."""
    if isinstance(records, Tracer):
        return {
            "emitted": records.emitted,
            "dropped": records.dropped,
            "capacity": records._buffer.maxlen,
        }
    if isinstance(records, TraceFile) and records.meta is not None:
        return {
            "emitted": records.meta.get("emitted"),
            "dropped": records.dropped,
            "capacity": records.meta.get("capacity"),
        }
    return None


def _ms(value: float) -> float:
    return round(value * 1e3, 3)


def hop_stage_table(records: Iterable[Any]) -> list[dict[str, Any]]:
    """Per-stage decomposition of every traced network hop.

    One row per stage: mean / p50 / p95 / max in milliseconds, plus the share
    of total hop latency the stage accounts for.  Aggregation runs over
    fixed-size log-bucket histograms, so memory stays constant no matter how
    many hops the trace holds (multi-GB sweeps included).
    """
    rows = _records_as_dicts(records)
    hists = {stage: Histogram() for stage in HOP_STAGES}
    for row in rows:
        if row.get("type") != "span" or row.get("name") != "net.hop":
            continue
        attrs = row.get("attrs") or {}
        for stage in HOP_STAGES:
            hists[stage].record(float(attrs.get(stage, 0.0)))
    hops = hists[HOP_STAGES[0]].count
    if not hops:
        return []
    grand_total = sum(h.sum for h in hists.values()) or 1.0
    table = []
    for stage in HOP_STAGES:
        hist = hists[stage]
        table.append(
            {
                "stage": stage,
                "hops": hops,
                "mean_ms": _ms(hist.sum / hops),
                "p50_ms": _ms(hist.quantile(0.50)),
                "p95_ms": _ms(hist.quantile(0.95)),
                "max_ms": _ms(hist.max),
                "share_%": round(100.0 * hist.sum / grand_total, 1),
            }
        )
    return table


def hop_kind_table(records: Iterable[Any]) -> list[dict[str, Any]]:
    """NIC wait and tx time attributed per message kind (top talkers first)."""
    rows = _records_as_dicts(records)
    per_kind: dict[str, dict[str, float]] = defaultdict(
        lambda: {"hops": 0, "bytes": 0, "nic_wait": 0.0, "tx": 0.0}
    )
    for row in rows:
        if row.get("type") != "span" or row.get("name") != "net.hop":
            continue
        attrs = row.get("attrs") or {}
        bucket = per_kind[attrs.get("kind", "?")]
        bucket["hops"] += 1
        bucket["bytes"] += attrs.get("size", 0)
        bucket["nic_wait"] += attrs.get("nic_wait", 0.0)
        bucket["tx"] += attrs.get("tx", 0.0)
    table = [
        {
            "kind": kind,
            "hops": int(b["hops"]),
            "MB": round(b["bytes"] / 1e6, 2),
            "nic_wait_s": round(b["nic_wait"], 3),
            "tx_s": round(b["tx"], 3),
        }
        for kind, b in per_kind.items()
    ]
    table.sort(key=lambda r: r["tx_s"] + r["nic_wait_s"], reverse=True)
    return table


def span_summary_table(records: Iterable[Any]) -> list[dict[str, Any]]:
    """Duration statistics for every span name except raw network hops."""
    rows = _records_as_dicts(records)
    durations: dict[str, Histogram] = defaultdict(Histogram)
    for row in rows:
        if row.get("type") != "span" or row.get("name") == "net.hop":
            continue
        durations[row["name"]].record(float(row["end"]) - float(row["start"]))
    table = []
    for name in sorted(durations):
        hist = durations[name]
        table.append(
            {
                "span": name,
                "count": hist.count,
                "mean_ms": _ms(hist.sum / hist.count),
                "p50_ms": _ms(hist.quantile(0.50)),
                "p95_ms": _ms(hist.quantile(0.95)),
                "max_ms": _ms(hist.max),
            }
        )
    return table


def counter_table(records: Iterable[Any]) -> list[dict[str, Any]]:
    """Event counts and value sums per counter name."""
    rows = _records_as_dicts(records)
    counts: dict[str, int] = defaultdict(int)
    sums: dict[str, float] = defaultdict(float)
    for row in rows:
        if row.get("type") != "counter":
            continue
        counts[row["name"]] += 1
        sums[row["name"]] += float(row.get("value", 1.0))
    return [
        {"counter": name, "events": counts[name], "value_sum": round(sums[name], 4)}
        for name in sorted(counts)
    ]


def client_latency_table(records: Iterable[Any]) -> list[dict[str, Any]]:
    """Client-observed latency percentiles from ``smr.client_latency``."""
    rows = _records_as_dicts(records)
    hist = Histogram()
    for row in rows:
        if row.get("type") == "counter" and row.get("name") == "smr.client_latency":
            hist.record(float(row.get("value", 0.0)))
    if not hist.count:
        return []
    return [
        {
            "accepted_txns": hist.count,
            "mean_s": round(hist.sum / hist.count, 4),
            "p50_s": round(hist.quantile(0.50), 4),
            "p95_s": round(hist.quantile(0.95), 4),
            "p99_s": round(hist.quantile(0.99), 4),
            "max_s": round(hist.max, 4),
        }
    ]


def sim_table(records: Iterable[Any]) -> list[dict[str, Any]]:
    """Simulator wall-clock attribution from ``sim.run`` spans."""
    rows = _records_as_dicts(records)
    table = []
    for row in rows:
        if row.get("type") != "span" or row.get("name") != "sim.run":
            continue
        attrs = row.get("attrs") or {}
        table.append(
            {
                "sim_window_s": round(float(row["end"]) - float(row["start"]), 3),
                "events": attrs.get("events"),
                "wall_s": attrs.get("wall_s"),
                "wall_per_sim_s": attrs.get("wall_per_sim_s"),
                "events/wall_s": attrs.get("events_per_wall_s"),
            }
        )
    return table


def _header(records: Iterable[Any]) -> str | None:
    """Ring-buffer accounting line; loud when records were evicted."""
    info = dropped_info(records)
    if info is None:
        return None
    line = (
        f"Trace: {info['emitted']} records emitted, {info['dropped']} dropped "
        f"(ring capacity {info['capacity']})"
    )
    if info["dropped"]:
        line += (
            "\nWARNING: the ring buffer evicted records — every aggregate "
            "below is skewed toward the end of the run; re-run with a higher "
            "--capacity."
        )
    return line


def format_trace_report(records: Iterable[Any]) -> str:
    """Render the full per-stage report for a trace."""
    rows = _records_as_dicts(records)
    sections = []
    header = _header(records)
    if header:
        sections.append(header)
    hop_table = hop_stage_table(rows)
    if hop_table:
        sections.append(
            format_table(hop_table, "Per-hop latency decomposition (all traced hops)")
        )
    kind_table = hop_kind_table(rows)
    if kind_table:
        sections.append(format_table(kind_table, "NIC time by message kind"))
    spans = span_summary_table(rows)
    if spans:
        sections.append(format_table(spans, "Span summary (RBC phases, rounds)"))
    counters = counter_table(rows)
    if counters:
        sections.append(format_table(counters, "Counters"))
    clients = client_latency_table(rows)
    if clients:
        sections.append(format_table(clients, "Client-observed latency"))
    sim = sim_table(rows)
    if sim:
        sections.append(format_table(sim, "Simulator"))
    if not sections:
        return "(empty trace: no records)"
    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="trace_report", description="Summarize a repro JSONL trace"
    )
    parser.add_argument("trace", help="path to a trace.jsonl file")
    parser.add_argument(
        "--json", action="store_true", help="emit the tables as JSON instead of text"
    )
    args = parser.parse_args(argv)
    rows = TraceFile(args.trace)  # streaming: multi-GB traces don't OOM
    if args.json:
        print(
            json.dumps(
                {
                    "meta": dropped_info(rows),
                    "hop_stages": hop_stage_table(rows),
                    "hop_kinds": hop_kind_table(rows),
                    "spans": span_summary_table(rows),
                    "counters": counter_table(rows),
                    "client_latency": client_latency_table(rows),
                    "sim": sim_table(rows),
                },
                indent=2,
            )
        )
    else:
        print(format_trace_report(rows))
    if rows.dropped:
        print(
            f"trace_report: {rows.dropped} records were evicted from the "
            "tracer ring; aggregates are unreliable — raise --capacity and "
            "re-record.",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests of main()
    raise SystemExit(main())
