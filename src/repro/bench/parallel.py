"""Parallel experiment engine: process fan-out + content-addressed cache.

The benchmark suite sweeps (protocol × n × load × seed) grids of *independent*
discrete-event simulations — embarrassingly parallel work that the serial
runner pushed through one core.  This module shards any grid across worker
processes and merges results **by grid index, never by completion time**, so
a parallel sweep's CSV output is byte-identical to a serial one (each
simulation owns its seeded RNG streams and shares no mutable state).

On top of the fan-out sits a content-addressed result cache
(``results/.cache/``): each grid point is keyed by a digest of its full
:class:`~repro.bench.runner.ExperimentConfig`, the run limits, and a digest
of the ``repro`` package sources.  Re-running a benchmark therefore only
simulates points whose inputs — config *or* code — changed; everything else
is served from disk with zero simulator events.

Environment knobs (CLI flags take precedence where offered):

* ``REPRO_JOBS`` — default worker count for :func:`run_grid` / :func:`run_tasks`.
* ``REPRO_CACHE`` — ``0`` disables the disk cache (default: enabled).
* ``REPRO_CACHE_SALT`` — extra key material, for forced invalidation.
* ``REPRO_RESULTS_DIR`` — relocates ``results/`` (and with it the cache).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
from dataclasses import asdict, fields
from typing import Any, Callable, Iterable, Sequence

from .metrics import RunMetrics
from .reporting import results_path
from .runner import ExperimentConfig, _simulate

#: Bump to invalidate every cached result on disk (schema changes).
CACHE_VERSION = 1

#: In-process result memo (config, max_events) → RunMetrics: identical grid
#: points simulated once per session even with the disk cache disabled
#: (fig5c and fig6 share geometry, for example).
_MEMORY: dict[tuple[ExperimentConfig, int | None], RunMetrics] = {}

_SOURCE_DIGEST: str | None = None


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1 = serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def source_digest() -> str:
    """Digest over every ``repro`` source file (content-addressed cache key).

    Any edit anywhere in the package invalidates cached results — deliberately
    conservative: a stale cache that masks a code change would silently turn
    the benchmark suite into a no-op.
    """
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is not None:
        return _SOURCE_DIGEST
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    h = hashlib.sha256()
    for dirpath, _dirnames, filenames in sorted(os.walk(package_root)):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            h.update(os.path.relpath(path, package_root).encode())
            with open(path, "rb") as fh:
                h.update(fh.read())
    _SOURCE_DIGEST = h.hexdigest()
    return _SOURCE_DIGEST


def metrics_to_dict(metrics: RunMetrics) -> dict:
    return asdict(metrics)


def metrics_from_dict(data: dict) -> RunMetrics:
    known = {f.name for f in fields(RunMetrics)}
    return RunMetrics(**{k: v for k, v in data.items() if k in known})


class ResultCache:
    """Content-addressed on-disk cache of :class:`RunMetrics`.

    One JSON file per grid point under ``root`` (default
    ``results/.cache/``), named by the point's key.  Keys cover the config,
    run limits, package source digest, a schema version, and an optional
    salt — so a hit is only possible when re-simulating would reproduce the
    stored result bit for bit.
    """

    def __init__(self, root: str | None = None, salt: str | None = None) -> None:
        self.root = root if root is not None else results_path(".cache")
        self.salt = salt if salt is not None else os.environ.get("REPRO_CACHE_SALT", "")
        self.hits = 0
        self.misses = 0

    def key_for(self, config: ExperimentConfig, max_events: int | None = None) -> str:
        payload = json.dumps(
            {
                "version": CACHE_VERSION,
                "config": asdict(config),
                "max_events": max_events,
                "source": source_digest(),
                "salt": self.salt,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def load(self, key: str) -> RunMetrics | None:
        try:
            with open(self._path(key), encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return metrics_from_dict(data["metrics"])

    def store(self, key: str, config: ExperimentConfig, metrics: RunMetrics) -> None:
        os.makedirs(self.root, exist_ok=True)
        path = self._path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        body = {"config": asdict(config), "metrics": metrics_to_dict(metrics)}
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(body, fh)
            fh.write("\n")
        os.replace(tmp, path)  # atomic: concurrent writers race benignly


def _resolve_cache(cache, cache_dir: str | None, salt: str | None) -> ResultCache | None:
    if isinstance(cache, ResultCache):
        return cache
    if cache is None:
        cache = os.environ.get("REPRO_CACHE", "1") != "0"
    if not cache:
        return None
    return ResultCache(root=cache_dir, salt=salt)


def _grid_worker(item: tuple[int, ExperimentConfig, int | None]) -> tuple[int, RunMetrics]:
    index, config, max_events = item
    # The uncached path on purpose: run_experiment itself may consult the
    # cache (REPRO_CACHE=1), and workers must simulate, not recurse into it.
    return index, _simulate(config, max_events=max_events)


def _fan_out(worker: Callable, items: Sequence, jobs: int) -> Iterable:
    """Run ``worker`` over ``items``; yields results in completion order.

    Callers must merge by the index each item carries — completion order is
    nondeterministic by nature and must never leak into outputs.
    """
    if jobs <= 1 or len(items) <= 1:
        for item in items:
            yield worker(item)
        return
    with multiprocessing.Pool(processes=min(jobs, len(items))) as pool:
        yield from pool.imap_unordered(worker, items)


def run_grid(
    configs: Sequence[ExperimentConfig],
    jobs: int | None = None,
    cache: "ResultCache | bool | None" = None,
    cache_dir: str | None = None,
    salt: str | None = None,
    max_events: int | None = None,
) -> list[RunMetrics]:
    """Run every config of a grid; returns metrics **ordered by grid index**.

    Args:
        jobs: worker processes (default ``REPRO_JOBS``, i.e. 1).  With
            ``jobs=1`` everything runs inline in this process.
        cache: a :class:`ResultCache`, True/False, or None to follow
            ``REPRO_CACHE`` (default: enabled).
        cache_dir / salt: forwarded to the constructed :class:`ResultCache`.
        max_events: per-run event safety valve, part of the cache key.

    Cached and duplicate points are never re-simulated; the remaining points
    fan out across processes and results merge back by index, so the returned
    list — and any CSV derived from it — is byte-identical to a serial run.
    """
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    store = _resolve_cache(cache, cache_dir, salt)
    results: list[RunMetrics | None] = [None] * len(configs)
    #: key → indices awaiting that point (dedupes identical configs).
    pending: dict[tuple, list[int]] = {}
    keys: dict[tuple, str] = {}
    for index, config in enumerate(configs):
        memo_key = (config, max_events)
        hit = _MEMORY.get(memo_key)
        if hit is None and store is not None:
            disk_key = keys.setdefault(memo_key, store.key_for(config, max_events))
            hit = store.load(disk_key)
            if hit is not None:
                _MEMORY[memo_key] = hit
        if hit is not None:
            results[index] = hit
            continue
        pending.setdefault(memo_key, []).append(index)
    if pending:
        items = [
            (indices[0], configs[indices[0]], max_events)
            for indices in pending.values()
        ]
        by_first_index = {indices[0]: indices for indices in pending.values()}
        for index, metrics in _fan_out(_grid_worker, items, jobs):
            indices = by_first_index[index]
            config = configs[index]
            memo_key = (config, max_events)
            _MEMORY[memo_key] = metrics
            if store is not None:
                store.store(keys.get(memo_key) or store.key_for(config, max_events),
                            config, metrics)
            for slot in indices:
                results[slot] = metrics
    return results  # type: ignore[return-value]


def _task_worker(item: tuple[int, Callable, tuple]) -> tuple[int, Any]:
    index, fn, args = item
    return index, fn(*args)


def run_tasks(
    tasks: Sequence[tuple[Callable, tuple]],
    jobs: int | None = None,
) -> list[Any]:
    """Generic fan-out for benches that are not ``ExperimentConfig`` grids.

    ``tasks`` is a sequence of ``(fn, args)`` pairs; ``fn`` must be a
    module-level (picklable) callable returning a picklable value.  Results
    come back ordered by task index regardless of completion order.  No
    caching — callers with cacheable work should express it as a config grid.
    """
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    items = [(index, fn, tuple(args)) for index, (fn, args) in enumerate(tasks)]
    results: list[Any] = [None] * len(items)
    for index, value in _fan_out(_task_worker, items, jobs):
        results[index] = value
    return results


def clear_memory_cache() -> None:
    """Drop the in-process memo (tests; disk cache is unaffected)."""
    _MEMORY.clear()
