"""Parallel experiment engine: persistent worker pool + content-addressed cache.

The benchmark suite sweeps (protocol × n × load × seed) grids of *independent*
discrete-event simulations — embarrassingly parallel work that the serial
runner pushed through one core.  This module shards any grid across a
**persistent pool of forked workers** and merges results **by grid index,
never by completion time**, so a parallel sweep's CSV output is byte-identical
to a serial one (each simulation owns its seeded RNG streams and shares no
mutable state).

Pool architecture (see ``docs/PERFORMANCE.md`` for the full story):

* Workers fork **once** per process lifetime and are reused across grids.
  The first grid is staged in :data:`_GRID_REGISTRY` *before* the fork, so
  workers inherit it (and the warm interpreter, imported simulation stack,
  and source-digest memo) through copy-on-write — zero pickling.
* Later grids ship to each worker at most once (a ``load`` message on first
  use); every task after that is a compact ``(grid_id, index)`` tuple.
* Scheduling is demand-driven with one outstanding task per worker, so a
  crashed worker loses exactly one known point: the pool respawns a
  replacement, retries the point once, and on a second death records a
  per-point :class:`GridPointError` instead of hanging or aborting the grid.
* Results stream back over a queue and merge into an index-ordered slot
  array as they arrive (cache writes happen immediately, not at a barrier).

On top of the fan-out sits a content-addressed result cache
(``results/.cache/``): each grid point is keyed by a digest of its full
:class:`~repro.bench.runner.ExperimentConfig`, the run limits, and a digest
of the ``repro`` package sources.  Lookups are batched — one directory scan
per grid, then only the hits are opened — so a cold cache costs one
``scandir`` instead of one failed ``open`` per point.

Environment knobs (CLI flags take precedence where offered):

* ``REPRO_JOBS`` — default worker count for :func:`run_grid` /
  :func:`run_tasks`; an integer or ``auto`` (= CPU count).  Nonsensical
  values (0, negative, garbage) raise :class:`~repro.errors.ConfigError`;
  values above ``cpu_count × 4`` clamp with a warning.
* ``REPRO_CACHE`` — ``0`` disables the disk cache (default: enabled).
* ``REPRO_CACHE_SALT`` — extra key material, for forced invalidation.
* ``REPRO_RESULTS_DIR`` — relocates ``results/`` (and with it the cache).
"""

from __future__ import annotations

import atexit
import hashlib
import json
import multiprocessing
import os
import queue as _queue
import sys
from collections import deque
from dataclasses import asdict, dataclass, fields
from typing import Any, Callable, Iterable, Iterator, Sequence

from ..errors import ConfigError
from .metrics import RunMetrics
from .reporting import results_path
from .runner import ExperimentConfig, _simulate

#: Bump to invalidate every cached result on disk (schema changes).
CACHE_VERSION = 1

#: In-process result memo (config, max_events) → RunMetrics: identical grid
#: points simulated once per session even with the disk cache disabled
#: (fig5c and fig6 share geometry, for example).
_MEMORY: dict[tuple[ExperimentConfig, int | None], RunMetrics] = {}

_SOURCE_DIGEST: str | None = None

#: Staged grids, keyed by grid id: ``{gid: (configs_tuple, max_events)}``.
#: Populated in the parent *before* workers fork (so the first grid travels
#: by copy-on-write) and shipped lazily to already-running workers.
_GRID_REGISTRY: dict[int, tuple[tuple, int | None]] = {}
_GRID_SEQ = 0

#: Hard ceiling multiplier: more workers than ``cpu_count × 4`` only adds
#: scheduler thrash for CPU-bound simulations.
JOBS_CEILING_FACTOR = 4


# -- job-count resolution ------------------------------------------------------


def resolve_jobs(value: int | str | None = None, source: str = "jobs") -> int:
    """Validated worker count from an int, ``"auto"``, or the environment.

    ``None`` reads ``REPRO_JOBS`` (unset/empty = 1, i.e. serial).  ``"auto"``
    picks ``os.cpu_count()``.  Zero, negative, and non-numeric values raise
    :class:`ConfigError` — a mis-sized pool should fail loudly, not silently
    serialize or fork-bomb.  Values above ``cpu_count × 4`` clamp to the
    ceiling with a warning on stderr.
    """
    cpus = os.cpu_count() or 1
    if value is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        value, source = raw, "REPRO_JOBS"
    if isinstance(value, str):
        text = value.strip().lower()
        if text == "auto":
            return cpus
        try:
            value = int(text)
        except ValueError:
            raise ConfigError(
                f"{source} must be a positive integer or 'auto', got {value!r}"
            ) from None
    jobs = int(value)
    if jobs < 1:
        raise ConfigError(
            f"{source} must be >= 1 (got {jobs}); use 1 for serial or 'auto' "
            f"for the CPU count"
        )
    ceiling = cpus * JOBS_CEILING_FACTOR
    if jobs > ceiling:
        print(
            f"repro: {source}={jobs} exceeds cpu_count*{JOBS_CEILING_FACTOR}"
            f"={ceiling}; clamping to {ceiling}",
            file=sys.stderr,
        )
        return ceiling
    return jobs


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1 = serial)."""
    return resolve_jobs(None)


# -- cache ---------------------------------------------------------------------


def source_digest() -> str:
    """Digest over every ``repro`` source file (content-addressed cache key).

    Any edit anywhere in the package invalidates cached results — deliberately
    conservative: a stale cache that masks a code change would silently turn
    the benchmark suite into a no-op.
    """
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is not None:
        return _SOURCE_DIGEST
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    h = hashlib.sha256()
    for dirpath, _dirnames, filenames in sorted(os.walk(package_root)):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            h.update(os.path.relpath(path, package_root).encode())
            with open(path, "rb") as fh:
                h.update(fh.read())
    _SOURCE_DIGEST = h.hexdigest()
    return _SOURCE_DIGEST


def metrics_to_dict(metrics: RunMetrics) -> dict:
    return asdict(metrics)


def metrics_from_dict(data: dict) -> RunMetrics:
    known = {f.name for f in fields(RunMetrics)}
    return RunMetrics(**{k: v for k, v in data.items() if k in known})


class ResultCache:
    """Content-addressed on-disk cache of :class:`RunMetrics`.

    One JSON file per grid point under ``root`` (default
    ``results/.cache/``), named by the point's key.  Keys cover the config,
    run limits, package source digest, a schema version, and an optional
    salt — so a hit is only possible when re-simulating would reproduce the
    stored result bit for bit.
    """

    def __init__(self, root: str | None = None, salt: str | None = None) -> None:
        self.root = root if root is not None else results_path(".cache")
        self.salt = salt if salt is not None else os.environ.get("REPRO_CACHE_SALT", "")
        self.hits = 0
        self.misses = 0

    def key_for(self, config: ExperimentConfig, max_events: int | None = None) -> str:
        payload = json.dumps(
            {
                "version": CACHE_VERSION,
                "config": asdict(config),
                "max_events": max_events,
                "source": source_digest(),
                "salt": self.salt,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def scan(self) -> set[str]:
        """Keys present on disk — one directory scan, no per-key stat calls."""
        try:
            with os.scandir(self.root) as entries:
                return {
                    e.name[:-5] for e in entries if e.name.endswith(".json")
                }
        except OSError:
            return set()

    def load(self, key: str) -> RunMetrics | None:
        try:
            with open(self._path(key), encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return metrics_from_dict(data["metrics"])

    def load_many(self, keys: Iterable[str]) -> dict[str, RunMetrics]:
        """Batched :meth:`load`: one :meth:`scan`, then open only the hits.

        A cold cache costs a single ``scandir`` for the whole grid instead of
        one failed ``open`` per point; misses are tallied without touching
        the filesystem again.
        """
        present = self.scan()
        found: dict[str, RunMetrics] = {}
        for key in keys:
            if key not in present:
                self.misses += 1
                continue
            metrics = self.load(key)  # tallies the hit (or a corrupt-file miss)
            if metrics is not None:
                found[key] = metrics
        return found

    def store(self, key: str, config: ExperimentConfig, metrics: RunMetrics) -> None:
        os.makedirs(self.root, exist_ok=True)
        path = self._path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        body = {"config": asdict(config), "metrics": metrics_to_dict(metrics)}
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(body, fh)
            fh.write("\n")
        os.replace(tmp, path)  # atomic: concurrent writers race benignly


def _resolve_cache(cache, cache_dir: str | None, salt: str | None) -> ResultCache | None:
    if isinstance(cache, ResultCache):
        return cache
    if cache is None:
        cache = os.environ.get("REPRO_CACHE", "1") != "0"
    if not cache:
        return None
    return ResultCache(root=cache_dir, salt=salt)


# -- worker pool ---------------------------------------------------------------


def _worker_main(worker_id: int, task_q, result_q) -> None:
    """Worker loop: owns a private task queue, streams results back.

    ``grids`` starts as a fork-time snapshot of the parent's registry —
    grids staged before this worker forked arrive for free — and grows via
    ``load`` messages for grids staged later.  Task tuples:

    * ``("grid", index, gid, i)`` — simulate point ``i`` of staged grid ``gid``
    * ``("call", index, fn, args)`` — generic picklable callable
    * ``("load", gid, configs, max_events)`` / ``("unload", gid)`` / ``("stop",)``
    """
    grids = dict(_GRID_REGISTRY)  # inherited through fork, copy-on-write
    while True:
        task = task_q.get()
        tag = task[0]
        if tag == "stop":
            return
        if tag == "load":
            grids[task[1]] = (task[2], task[3])
            continue
        if tag == "unload":
            grids.pop(task[1], None)
            continue
        index = task[1]
        try:
            if tag == "grid":
                configs, max_events = grids[task[2]]
                value = _simulate(configs[task[3]], max_events=max_events)
            else:  # "call"
                value = task[2](*task[3])
            result_q.put((worker_id, index, value, None))
        except BaseException as exc:  # noqa: BLE001 — must reach the parent
            result_q.put((worker_id, index, None, f"{type(exc).__name__}: {exc}"))


class _Worker:
    __slots__ = ("proc", "task_q", "outstanding", "loaded")


class WorkerPool:
    """Persistent pool of forked simulation workers (see module docstring).

    Create via :func:`get_pool` — the module keeps one live pool and reuses
    it across grids, so the fork (and everything it inherits) is paid once.
    """

    def __init__(self, jobs: int) -> None:
        self.jobs = jobs
        self._ctx = multiprocessing.get_context("fork")
        # Warm read-only state *before* forking so children inherit it
        # instead of recomputing per worker: the source-tree digest memo and
        # (from the caller) the staged first grid.
        source_digest()
        self._result_q = self._ctx.Queue()
        self._workers: dict[int, _Worker] = {}
        self._next_worker_id = 0
        self._next_ticket = 0
        self._closed = False
        for _ in range(jobs):
            self._spawn()

    # -- lifecycle --

    def _spawn(self) -> int:
        wid = self._next_worker_id
        self._next_worker_id += 1
        worker = _Worker()
        worker.task_q = self._ctx.SimpleQueue()
        worker.outstanding = None
        # A fork taken now inherits every currently staged grid.
        worker.loaded = set(_GRID_REGISTRY)
        worker.proc = self._ctx.Process(
            target=_worker_main,
            args=(wid, worker.task_q, self._result_q),
            daemon=True,
            name=f"repro-worker-{wid}",
        )
        worker.proc.start()
        self._workers[wid] = worker
        return wid

    def alive(self) -> bool:
        return not self._closed and bool(self._workers)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self._workers.values():
            try:
                worker.task_q.put(("stop",))
            except (OSError, ValueError):
                pass
        for worker in self._workers.values():
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.terminate()
        self._workers.clear()

    # -- grid staging --

    def stage_grid(self, configs: Sequence, max_events: int | None) -> int:
        global _GRID_SEQ
        gid = _GRID_SEQ
        _GRID_SEQ += 1
        _GRID_REGISTRY[gid] = (tuple(configs), max_events)
        return gid

    def release_grid(self, gid: int) -> None:
        _GRID_REGISTRY.pop(gid, None)
        for worker in self._workers.values():
            if gid in worker.loaded and worker.proc.is_alive():
                try:
                    worker.task_q.put(("unload", gid))
                except (OSError, ValueError):
                    pass
            worker.loaded.discard(gid)

    # -- execution --

    def _assign(self, worker: _Worker, ticket: int, spec: tuple) -> None:
        if spec[0] == "grid":
            gid = spec[1]
            if gid not in worker.loaded:
                configs, max_events = _GRID_REGISTRY[gid]
                worker.task_q.put(("load", gid, configs, max_events))
                worker.loaded.add(gid)
            task = ("grid", ticket, gid, spec[2])
        else:
            task = ("call", ticket, spec[1], spec[2])
        worker.outstanding = (ticket, spec)
        worker.task_q.put(task)

    def run_stream(
        self, tasks: Sequence[tuple[int, tuple]], retries: int = 1
    ) -> Iterator[tuple[int, Any, str | None]]:
        """Run ``(index, spec)`` tasks; yield ``(index, value, error)`` as
        each completes (completion order — callers merge by index).

        Demand-driven: each worker holds exactly one outstanding task, so a
        worker death loses one known point.  The pool respawns a
        replacement, re-queues the point up to ``retries`` times, and past
        that yields an error string instead of a value.

        Tasks travel under pool-unique tickets, so results from a stream the
        caller abandoned mid-iteration (or duplicates surviving a
        crash-retry race) are recognized and dropped instead of being
        misattributed to the current stream's indices.
        """
        tickets: dict[int, int] = {}
        pending: deque = deque()
        for index, spec in tasks:
            ticket = self._next_ticket
            self._next_ticket += 1
            tickets[ticket] = index
            pending.append((ticket, spec))
        attempts: dict[int, int] = {}
        idle = deque(
            wid
            for wid, worker in self._workers.items()
            if worker.outstanding is None
        )
        remaining = len(tickets)
        while remaining:
            while pending and idle:
                wid = idle.popleft()
                worker = self._workers.get(wid)
                if worker is None or not worker.proc.is_alive():
                    continue  # reaped below once the queue drains
                ticket, spec = pending.popleft()
                self._assign(worker, ticket, spec)
            try:
                wid, ticket, value, error = self._result_q.get(timeout=0.25)
            except _queue.Empty:
                for ticket, err in self._reap(pending, attempts, retries):
                    index = tickets.pop(ticket, None)
                    if index is None:
                        continue
                    remaining -= 1
                    yield index, None, err
                idle = deque(
                    wid
                    for wid, worker in self._workers.items()
                    if worker.outstanding is None
                )
                continue
            worker = self._workers.get(wid)
            if worker is not None:
                worker.outstanding = None
                idle.append(wid)
            index = tickets.pop(ticket, None)
            if index is None:
                continue  # stale: abandoned stream or crash-retry duplicate
            remaining -= 1
            yield index, value, error

    def _reap(
        self, pending: deque, attempts: dict[int, int], retries: int
    ) -> list[tuple[int, str]]:
        """Replace dead workers; re-queue or fail their outstanding points."""
        failures: list[tuple[int, str]] = []
        for wid, worker in list(self._workers.items()):
            if worker.proc.is_alive():
                continue
            exit_code = worker.proc.exitcode
            task = worker.outstanding
            del self._workers[wid]
            self._spawn()
            if task is None:
                continue
            ticket, spec = task
            tried = attempts.get(ticket, 0) + 1
            attempts[ticket] = tried
            if tried > retries:
                failures.append(
                    (
                        ticket,
                        f"worker process died (exit code {exit_code}) "
                        f"while simulating this point; {tried} attempt(s)",
                    )
                )
            else:
                pending.appendleft(task)
        return failures


_POOL: WorkerPool | None = None


def _fork_ready() -> bool:
    """Can this process host a fork pool?  (Not itself a daemonic worker.)"""
    return (
        "fork" in multiprocessing.get_all_start_methods()
        and not multiprocessing.current_process().daemon
    )


def get_pool(jobs: int) -> WorkerPool:
    """The shared persistent pool, (re)created only when the size changes."""
    global _POOL
    if _POOL is not None and (not _POOL.alive() or _POOL.jobs != jobs):
        _POOL.close()
        _POOL = None
    if _POOL is None:
        _POOL = WorkerPool(jobs)
    return _POOL


def shutdown_pool() -> None:
    """Stop the shared pool (tests / interpreter exit); next use re-forks."""
    global _POOL
    if _POOL is not None:
        _POOL.close()
        _POOL = None


atexit.register(shutdown_pool)


# -- grid execution ------------------------------------------------------------


@dataclass(frozen=True)
class GridPointError:
    """Per-point failure record: the grid completed, this point did not."""

    index: int
    config: ExperimentConfig | None
    error: str


class ParallelGridError(RuntimeError):
    """Raised after a fan-out completes with failed points.

    The grid always runs to completion first; ``records`` holds one
    :class:`GridPointError` per failed slot and ``results`` the full
    index-ordered result list (``None`` in failed slots).
    """

    def __init__(self, records: list[GridPointError], results: list) -> None:
        lines = ", ".join(f"#{r.index}: {r.error}" for r in records[:4])
        more = f" (+{len(records) - 4} more)" if len(records) > 4 else ""
        super().__init__(f"{len(records)} grid point(s) failed — {lines}{more}")
        self.records = records
        self.results = results


def run_grid(
    configs: Sequence[ExperimentConfig],
    jobs: int | str | None = None,
    cache: "ResultCache | bool | None" = None,
    cache_dir: str | None = None,
    salt: str | None = None,
    max_events: int | None = None,
    on_error: str = "raise",
) -> list:
    """Run every config of a grid; returns metrics **ordered by grid index**.

    Args:
        jobs: worker processes — an int, ``"auto"`` (CPU count), or None to
            follow ``REPRO_JOBS`` (default 1 = inline in this process).
        cache: a :class:`ResultCache`, True/False, or None to follow
            ``REPRO_CACHE`` (default: enabled).
        cache_dir / salt: forwarded to the constructed :class:`ResultCache`.
        max_events: per-run event safety valve, part of the cache key.
        on_error: ``"raise"`` (default) raises :class:`ParallelGridError`
            *after* the grid completes; ``"record"`` leaves a
            :class:`GridPointError` in each failed slot instead.  Only the
            fan-out path produces error records — with ``jobs=1`` exceptions
            propagate directly, as before.

    Cached and duplicate points are never re-simulated; the remaining points
    fan out across the persistent worker pool and results merge back by
    index, so the returned list — and any CSV derived from it — is
    byte-identical to a serial run.
    """
    if on_error not in ("raise", "record"):
        raise ConfigError(f"on_error must be 'raise' or 'record', got {on_error!r}")
    jobs = resolve_jobs(jobs)
    store = _resolve_cache(cache, cache_dir, salt)
    results: list = [None] * len(configs)
    #: memo key → slot indices awaiting that point (dedupes identical configs).
    pending: dict[tuple, list[int]] = {}
    for index, config in enumerate(configs):
        memo_key = (config, max_events)
        hit = _MEMORY.get(memo_key)
        if hit is not None:
            results[index] = hit
            continue
        pending.setdefault(memo_key, []).append(index)
    keys: dict[tuple, str] = {}
    if store is not None and pending:
        # Batched lookup: one directory scan for the whole grid.
        keys = {mk: store.key_for(mk[0], mk[1]) for mk in pending}
        found = store.load_many(keys.values())
        for memo_key, key in keys.items():
            hit = found.get(key)
            if hit is None:
                continue
            _MEMORY[memo_key] = hit
            for slot in pending.pop(memo_key):
                results[slot] = hit
    records: list[GridPointError] = []
    if pending:
        def settle(memo_key: tuple, metrics: RunMetrics) -> None:
            _MEMORY[memo_key] = metrics
            if store is not None:
                key = keys.get(memo_key) or store.key_for(memo_key[0], memo_key[1])
                store.store(key, memo_key[0], metrics)
            for slot in pending[memo_key]:
                results[slot] = metrics

        if jobs <= 1 or len(pending) <= 1 or not _fork_ready():
            for memo_key in pending:
                settle(memo_key, _simulate(memo_key[0], max_events=max_events))
        else:
            pool = get_pool(jobs)
            gid = pool.stage_grid(configs, max_events)
            # One task per *unique* point, addressed by its first slot.
            tasks = [
                (indices[0], ("grid", gid, indices[0]))
                for indices in pending.values()
            ]
            by_first = {indices[0]: mk for mk, indices in pending.items()}
            try:
                for index, metrics, error in pool.run_stream(tasks):
                    memo_key = by_first[index]
                    if error is not None:
                        for slot in pending[memo_key]:
                            record = GridPointError(slot, memo_key[0], error)
                            records.append(record)
                            if on_error == "record":
                                results[slot] = record
                        continue
                    settle(memo_key, metrics)
            finally:
                pool.release_grid(gid)
    if records and on_error == "raise":
        raise ParallelGridError(sorted(records, key=lambda r: r.index), results)
    return results


def run_tasks(
    tasks: Sequence[tuple[Callable, tuple]],
    jobs: int | str | None = None,
) -> list[Any]:
    """Generic fan-out for benches that are not ``ExperimentConfig`` grids.

    ``tasks`` is a sequence of ``(fn, args)`` pairs; ``fn`` must be a
    module-level (picklable) callable returning a picklable value.  Results
    come back ordered by task index regardless of completion order, through
    the same persistent pool as :func:`run_grid`.  No caching — callers with
    cacheable work should express it as a config grid.  A failing task (or a
    task that kills its worker twice) raises :class:`ParallelGridError`
    after the batch completes.
    """
    jobs = resolve_jobs(jobs)
    results: list[Any] = [None] * len(tasks)
    if jobs <= 1 or len(tasks) <= 1 or not _fork_ready():
        for index, (fn, args) in enumerate(tasks):
            results[index] = fn(*args)
        return results
    pool = get_pool(jobs)
    stream = [
        (index, ("call", fn, tuple(args))) for index, (fn, args) in enumerate(tasks)
    ]
    records: list[GridPointError] = []
    for index, value, error in pool.run_stream(stream):
        if error is not None:
            records.append(GridPointError(index, None, error))
            continue
        results[index] = value
    if records:
        raise ParallelGridError(sorted(records, key=lambda r: r.index), results)
    return results


def clear_memory_cache() -> None:
    """Drop the in-process memo (tests; disk cache is unaffected)."""
    _MEMORY.clear()
