"""Proof-of-availability data dissemination (the straw-man's first stage).

A proposer pushes its block to the members of a clan; each member stores the
block and returns a signed acknowledgement; ``f_c + 1`` acks aggregate into a
:class:`PoA` — a transferable proof that at least one honest clan member
holds the block, so consensus can safely order the digest alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..committees.config import ClanConfig
from ..crypto.certificates import QuorumCertificate, build_certificate, verify_certificate
from ..crypto.hashing import digest as compute_digest
from ..crypto.signatures import Pki, Signature
from ..dag.block import Block
from ..errors import ConsensusError
from ..net import sizes
from ..net.message import Message
from ..net.network import Network
from ..types import NodeId


def ack_statement(block_digest: bytes) -> bytes:
    return compute_digest(b"POA-ACK", block_digest)


@dataclass(slots=True)
class PoaBlockMsg(Message):
    """Block pushed to a clan member for storage."""

    block: Block

    def wire_size(self) -> int:
        return self.block.wire_size() + sizes.HEADER_SIZE


@dataclass(slots=True)
class PoaAckMsg(Message):
    """Signed storage acknowledgement returned to the proposer."""

    block_digest: bytes
    signature: Signature

    signed = True

    def wire_size(self) -> int:
        return sizes.HEADER_SIZE + sizes.HASH_SIZE + sizes.SIGNATURE_SIZE


@dataclass(frozen=True)
class PoA:
    """Proof of availability: f_c+1 clan members vouch they hold the block."""

    block_digest: bytes
    proposer: NodeId
    clan_idx: int
    cert: QuorumCertificate
    txn_count: int
    created_at: float

    @property
    def signers(self) -> frozenset[NodeId]:
        return self.cert.signers

    def wire_size(self) -> int:
        return sizes.HEADER_SIZE + sizes.HASH_SIZE + sizes.BLS_SIGNATURE_SIZE + 32

    def verify(self, pki: Pki, cfg: ClanConfig) -> bool:
        clan = cfg.clan(self.clan_idx)
        quorum = cfg.clan_client_quorum(self.clan_idx)
        return (
            self.cert.message_digest == ack_statement(self.block_digest)
            and verify_certificate(pki, self.cert, quorum, clan=clan, clan_quorum=quorum)
        )


class PoaDisseminator:
    """Per-node PoA dissemination module (proposer and storage roles)."""

    def __init__(
        self,
        node_id: NodeId,
        cfg: ClanConfig,
        network: Network,
        pki: Pki,
        on_poa: Callable[[PoA], None],
    ) -> None:
        self.node_id = node_id
        self.cfg = cfg
        self.network = network
        self.pki = pki
        self._key = pki.key(node_id)
        self.on_poa = on_poa
        #: Blocks held for availability, by digest (storage role).
        self.stored: dict[bytes, Block] = {}
        #: Outstanding dissemination state (proposer role).
        self._pending: dict[bytes, dict] = {}

    def disseminate(self, block: Block) -> None:
        """Push ``block`` to this node's clan and start collecting acks."""
        if not self.cfg.is_block_proposer(self.node_id):
            raise ConsensusError(f"node {self.node_id} may not propose blocks")
        clan_idx = self.cfg.block_clan_of(self.node_id)
        block_digest = block.payload_digest()
        self._pending[block_digest] = {
            "acks": {},
            "clan_idx": clan_idx,
            "block": block,
            "done": False,
        }
        members = [p for p in sorted(self.cfg.clan(clan_idx)) if p != self.node_id]
        self.stored[block_digest] = block  # the proposer holds it too
        self.network.multicast(self.node_id, members, PoaBlockMsg(block))
        # The proposer's own ack counts toward the threshold.
        self._record_ack(
            block_digest, self.node_id, self._key.sign(ack_statement(block_digest))
        )

    def on_message(self, src: NodeId, msg: Message) -> bool:
        if isinstance(msg, PoaBlockMsg):
            self._on_block(src, msg)
        elif isinstance(msg, PoaAckMsg):
            self._on_ack(src, msg)
        else:
            return False
        return True

    def _on_block(self, src: NodeId, msg: PoaBlockMsg) -> None:
        block = msg.block
        if block.proposer != src:
            return  # authenticated channels: only the proposer pushes
        my_clan = self.cfg.clan_index_of(self.node_id)
        if my_clan is None or self.cfg.clan_index_of(src) != my_clan:
            return  # not my clan's data
        block_digest = block.payload_digest()
        self.stored[block_digest] = block
        ack = PoaAckMsg(block_digest, self._key.sign(ack_statement(block_digest)))
        self.network.send(self.node_id, src, ack)

    def _on_ack(self, src: NodeId, msg: PoaAckMsg) -> None:
        if msg.signature.signer != src:
            return
        if msg.signature.message_digest != ack_statement(msg.block_digest):
            return
        if not self.pki.verify(msg.signature):
            return
        self._record_ack(msg.block_digest, src, msg.signature)

    def _record_ack(self, block_digest: bytes, src: NodeId, signature: Signature) -> None:
        state = self._pending.get(block_digest)
        if state is None or state["done"]:
            return
        clan = self.cfg.clan(state["clan_idx"])
        if src not in clan:
            return
        state["acks"][src] = signature
        quorum = self.cfg.clan_client_quorum(state["clan_idx"])
        if len(state["acks"]) >= quorum:
            state["done"] = True
            block: Block = state["block"]
            poa = PoA(
                block_digest=block_digest,
                proposer=self.node_id,
                clan_idx=state["clan_idx"],
                cert=build_certificate(list(state["acks"].values())[:quorum]),
                txn_count=block.txn_count,
                created_at=block.created_at,
            )
            self.on_poa(poa)
