"""A Jolteon-style leader-based BFT SMR for ordering PoAs.

Two-chain commit over a linear chain of proposals:

* the view-``v`` leader proposes a batch of pending PoAs together with a
  quorum certificate for the view-``v-1`` proposal;
* replicas vote (signed digests) to the view-``v+1`` leader;
* a proposal is committed once it has a QC *and* its direct successor (the
  next consecutive view) has a QC — observed by replicas when the view-
  ``v+2`` proposal arrives carrying QC(v+1).

Good-case commit latency at replicas is 5δ from the proposal, matching the
paper's accounting for Jolteon in the Arete comparison (§8).  View timeouts
rotate past crashed leaders (simplified: on timeout replicas send a signed
new-view to the next leader, who proposes re-using the highest known QC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..crypto.certificates import QuorumCertificate, build_certificate, verify_certificate
from ..crypto.hashing import digest as compute_digest
from ..crypto.signatures import Pki, Signature
from ..errors import ConsensusError
from ..net import sizes
from ..net.message import Message
from ..net.network import Network
from ..sim.scheduler import Simulator
from ..sim.timers import Timer
from ..types import NodeId, max_faults, quorum_size
from .poa import PoA


def proposal_statement(view: int, digest_: bytes) -> bytes:
    return compute_digest(b"JOLTEON-PROP", view, digest_)


def vote_statement(view: int, digest_: bytes) -> bytes:
    return compute_digest(b"JOLTEON-VOTE", view, digest_)


def new_view_statement(view: int) -> bytes:
    return compute_digest(b"JOLTEON-NV", view)


@dataclass(frozen=True)
class Proposal:
    """A chained proposal carrying a batch of PoAs.

    ``tc`` (a certificate over 2f+1 new-view complaints for ``view - 1``)
    justifies a proposal whose parent is not the immediately preceding view —
    the fallback path after a failed leader.
    """

    view: int
    leader: NodeId
    batch: tuple[PoA, ...]
    parent_digest: bytes | None
    parent_qc: QuorumCertificate | None
    tc: QuorumCertificate | None = None

    def digest(self) -> bytes:
        return compute_digest(
            b"JOLTEON-BLOCK",
            self.view,
            self.leader,
            self.parent_digest if self.parent_digest is not None else b"",
            *[p.block_digest for p in self.batch],
        )

    def wire_size(self) -> int:
        size = sizes.HEADER_SIZE + sizes.HASH_SIZE
        size += sum(p.wire_size() for p in self.batch)
        if self.parent_qc is not None:
            size += sizes.BLS_SIGNATURE_SIZE + 32
        if self.tc is not None:
            size += sizes.BLS_SIGNATURE_SIZE + 32
        return size


@dataclass(slots=True)
class ProposalMsg(Message):
    proposal: Proposal
    signature: Signature

    signed = True

    def wire_size(self) -> int:
        return self.proposal.wire_size() + sizes.SIGNATURE_SIZE


@dataclass(slots=True)
class VoteMsg(Message):
    view: int
    digest: bytes
    signature: Signature

    signed = True

    def wire_size(self) -> int:
        return sizes.HEADER_SIZE + sizes.HASH_SIZE + sizes.SIGNATURE_SIZE


@dataclass(slots=True)
class NewViewMsg(Message):
    """Timeout complaint; carries the sender's highest QC so the next leader
    can extend the freshest certified proposal (standard Jolteon)."""

    view: int  # the view being abandoned
    signature: Signature
    high_digest: bytes | None = None
    high_qc: QuorumCertificate | None = None

    signed = True

    def wire_size(self) -> int:
        size = sizes.HEADER_SIZE + sizes.SIGNATURE_SIZE
        if self.high_qc is not None:
            size += sizes.HASH_SIZE + sizes.BLS_SIGNATURE_SIZE + 32
        return size


@dataclass(frozen=True)
class JolteonParams:
    view_timeout: float = 2.0
    max_batch: int = 256

    def __post_init__(self) -> None:
        if self.view_timeout <= 0:
            raise ConsensusError("view timeout must be positive")
        if self.max_batch < 1:
            raise ConsensusError("max batch must be positive")


class JolteonNode:
    """One replica of the leader-based SMR."""

    def __init__(
        self,
        node_id: NodeId,
        n: int,
        network: Network,
        sim: Simulator,
        pki: Pki,
        params: JolteonParams | None = None,
        on_commit: Callable[[Proposal, float], None] | None = None,
    ) -> None:
        self.node_id = node_id
        self.n = n
        self.f = max_faults(n)
        self.quorum = quorum_size(n)
        self.network = network
        self.sim = sim
        self.pki = pki
        self._key = pki.key(node_id)
        self.params = params if params is not None else JolteonParams()
        self.on_commit = on_commit
        self.view = 1
        self.mempool: list[PoA] = []
        self.proposals: dict[bytes, Proposal] = {}
        self.proposal_of_view: dict[int, bytes] = {}
        #: Votes being collected for a digest (next-leader role).
        self._votes: dict[bytes, dict[NodeId, Signature]] = {}
        self._qcs: dict[bytes, QuorumCertificate] = {}
        self._new_views: dict[int, dict[NodeId, Signature]] = {}
        self._tcs: dict[int, QuorumCertificate] = {}
        self.committed: list[tuple[Proposal, float]] = []
        self._committed_views: set[int] = set()
        self._high_qc: tuple[bytes, QuorumCertificate] | None = None
        self._voted_views: set[int] = set()
        self._proposed_views: set[int] = set()
        #: PoA block digests already included in some chained proposal —
        #: leaders must not re-propose them.
        self._included: set[bytes] = set()
        self._timer = Timer(sim, self.params.view_timeout, self._on_timeout)
        self.started = False

    # -- lifecycle --------------------------------------------------------------

    def leader_of(self, view: int) -> NodeId:
        return (view - 1) % self.n

    def start(self) -> None:
        self.started = True
        self._timer.start()
        if self.leader_of(self.view) == self.node_id:
            self._propose()

    def submit(self, poa: PoA) -> None:
        """Queue a PoA for inclusion (any replica; leaders drain their queue)."""
        self.mempool.append(poa)
        if (
            self.started
            and self.leader_of(self.view) == self.node_id
            and self.view not in self._proposed_views
        ):
            self._propose()

    # -- proposing ----------------------------------------------------------------

    def _propose(self, force: bool = False) -> None:
        view = self.view
        if view in self._proposed_views:
            return
        parent_digest, parent_qc = (None, None)
        if self._high_qc is not None:
            parent_digest, parent_qc = self._high_qc
        tc = self._tcs.get(view - 1)
        if view > 1 and force and tc is None:
            return  # a forced proposal must carry the TC justifying the gap
        if view > 1 and not force:
            # Good case: extend only a *consecutive* parent — propose once
            # QC(view-1) is in hand (it arrives as this leader collects the
            # previous view's votes).  The new-view timeout path forces a
            # proposal over whatever the highest QC is.
            parent = self.proposals.get(parent_digest) if parent_digest else None
            if parent is None or parent.view != view - 1:
                return
        pending = [p for p in self.mempool if p.block_digest not in self._included]
        batch = tuple(pending[: self.params.max_batch])
        self.mempool = [p for p in pending[len(batch):]]
        for poa in batch:
            self._included.add(poa.block_digest)
        proposal = Proposal(
            view, self.node_id, batch, parent_digest, parent_qc,
            tc=tc if force else None,
        )
        self._proposed_views.add(view)
        signature = self._key.sign(proposal_statement(view, proposal.digest()))
        self.network.broadcast(self.node_id, ProposalMsg(proposal, signature))

    # -- message handling -------------------------------------------------------------

    def on_message(self, src: NodeId, msg: Message) -> bool:
        if isinstance(msg, ProposalMsg):
            self._on_proposal(src, msg)
        elif isinstance(msg, VoteMsg):
            self._on_vote(src, msg)
        elif isinstance(msg, NewViewMsg):
            self._on_new_view(src, msg)
        else:
            return False
        return True

    def _on_proposal(self, src: NodeId, msg: ProposalMsg) -> None:
        proposal = msg.proposal
        if proposal.leader != src or self.leader_of(proposal.view) != src:
            return
        digest_ = proposal.digest()
        if msg.signature.message_digest != proposal_statement(proposal.view, digest_):
            return
        if not self.pki.verify(msg.signature):
            return
        if proposal.view > 1:
            has_tc = proposal.tc is not None and self._verify_tc(
                proposal.view - 1, proposal.tc
            )
            if proposal.parent_qc is None or proposal.parent_digest is None:
                if not has_tc:
                    return  # a chain gap needs a timeout certificate
            elif not verify_certificate(self.pki, proposal.parent_qc, self.quorum):
                return
            else:
                parent = self.proposals.get(proposal.parent_digest)
                if parent is not None and parent.view != proposal.view - 1 and not has_tc:
                    return  # non-consecutive parent also needs a TC
            expected = (
                vote_statement(
                    self.proposals[proposal.parent_digest].view
                    if proposal.parent_digest in self.proposals
                    else -1,
                    proposal.parent_digest,
                )
                if proposal.parent_digest is not None
                else None
            )
            # If we do not know the parent yet, accept the QC at face value
            # (its statement binds the digest; the view binding is checked
            # when the parent arrives).
            if (
                proposal.parent_qc is not None
                and proposal.parent_digest in self.proposals
                and proposal.parent_qc.message_digest != expected
            ):
                return
            if proposal.parent_qc is not None and proposal.parent_digest is not None:
                self._update_high_qc(proposal.parent_digest, proposal.parent_qc)
        self.proposals[digest_] = proposal
        self.proposal_of_view.setdefault(proposal.view, digest_)
        for poa in proposal.batch:
            self._included.add(poa.block_digest)
        # Vote once per view, to the *next* leader.
        if proposal.view >= self.view and proposal.view not in self._voted_views:
            self._voted_views.add(proposal.view)
            vote = VoteMsg(
                proposal.view,
                digest_,
                self._key.sign(vote_statement(proposal.view, digest_)),
            )
            self.network.send(self.node_id, self.leader_of(proposal.view + 1), vote)
        self._advance_to(proposal.view + 1)
        self._try_commit(proposal)

    def _on_vote(self, src: NodeId, msg: VoteMsg) -> None:
        if msg.signature.signer != src:
            return
        if msg.signature.message_digest != vote_statement(msg.view, msg.digest):
            return
        if not self.pki.verify(msg.signature):
            return
        votes = self._votes.setdefault(msg.digest, {})
        if src in votes:
            return
        votes[src] = msg.signature
        if len(votes) >= self.quorum and msg.digest not in self._qcs:
            qc = build_certificate(list(votes.values())[: self.quorum])
            self._qcs[msg.digest] = qc
            self._update_high_qc(msg.digest, qc)
            # As the (likely) next leader, extend the chain.
            if self.leader_of(self.view) == self.node_id:
                self._propose()

    def _on_new_view(self, src: NodeId, msg: NewViewMsg) -> None:
        if msg.signature.signer != src:
            return
        if msg.signature.message_digest != new_view_statement(msg.view):
            return
        if not self.pki.verify(msg.signature):
            return
        if (
            msg.high_qc is not None
            and msg.high_digest is not None
            and verify_certificate(self.pki, msg.high_qc, self.quorum)
        ):
            self._update_high_qc(msg.high_digest, msg.high_qc)
        supporters = self._new_views.setdefault(msg.view, {})
        supporters[src] = msg.signature
        if len(supporters) >= self.quorum:
            if msg.view not in self._tcs:
                self._tcs[msg.view] = build_certificate(
                    list(supporters.values())[: self.quorum]
                )
            self._advance_to(msg.view + 1, force=True)
            if (
                self.leader_of(self.view) == self.node_id
                and self.view == msg.view + 1
            ):
                self._propose(force=True)

    def _verify_tc(self, view: int, tc: QuorumCertificate) -> bool:
        return (
            tc.message_digest == new_view_statement(view)
            and verify_certificate(self.pki, tc, self.quorum)
        )

    # -- view/commit machinery ------------------------------------------------------

    def _advance_to(self, view: int, force: bool = False) -> None:
        if view <= self.view:
            return
        self.view = view
        self._timer.start()
        if self.leader_of(view) == self.node_id:
            self._propose(force=force)

    def _on_timeout(self) -> None:
        view = self.view
        signature = self._key.sign(new_view_statement(view))
        high_digest, high_qc = (None, None)
        if self._high_qc is not None:
            high_digest, high_qc = self._high_qc
        self.network.broadcast(
            self.node_id, NewViewMsg(view, signature, high_digest, high_qc)
        )
        self._timer.start()

    def _update_high_qc(self, digest_: bytes, qc: QuorumCertificate) -> None:
        proposal = self.proposals.get(digest_)
        if self._high_qc is None:
            self._high_qc = (digest_, qc)
        else:
            current = self.proposals.get(self._high_qc[0])
            if proposal is not None and (
                current is None or proposal.view > current.view
            ):
                self._high_qc = (digest_, qc)
        if proposal is not None:
            self._try_commit_two_chain(proposal)

    def _try_commit(self, proposal: Proposal) -> None:
        """On a new proposal: its parent_qc may complete a two-chain."""
        if proposal.parent_digest is None:
            return
        parent = self.proposals.get(proposal.parent_digest)
        if parent is not None:
            self._try_commit_two_chain(parent)

    def _try_commit_two_chain(self, child: Proposal) -> None:
        """Commit ``child``'s parent when QC(parent) and QC(child) exist on
        consecutive views."""
        if child.parent_digest is None:
            return
        parent = self.proposals.get(child.parent_digest)
        if parent is None or parent.view in self._committed_views:
            return
        if child.view != parent.view + 1:
            return  # two-chain needs consecutive views
        if child.digest() not in self._qcs and not self._child_qc_known(child):
            return
        self._commit_chain(parent)

    def _child_qc_known(self, child: Proposal) -> bool:
        """A QC over ``child`` is known if some stored proposal carries it."""
        digest_ = child.digest()
        return any(
            p.parent_digest == digest_ and p.parent_qc is not None
            for p in self.proposals.values()
        )

    def _commit_chain(self, proposal: Proposal) -> None:
        chain = []
        cursor: Proposal | None = proposal
        while cursor is not None and cursor.view not in self._committed_views:
            chain.append(cursor)
            if cursor.parent_digest is None:
                break
            cursor = self.proposals.get(cursor.parent_digest)
        now = self.sim.now
        for item in reversed(chain):
            self._committed_views.add(item.view)
            self.committed.append((item, now))
            if self.on_commit is not None:
                self.on_commit(item, now)

    # -- inspection --------------------------------------------------------------------

    def committed_poas(self) -> list[PoA]:
        result = []
        for proposal, _ in self.committed:
            result.extend(proposal.batch)
        return result
