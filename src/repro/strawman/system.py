"""The full straw-man system: PoA dissemination feeding the leader-based SMR.

One object per deployment, mirroring :class:`repro.consensus.Deployment` so
the latency benchmark can drive both architectures identically.
"""

from __future__ import annotations

from typing import Callable

from ..committees.config import ClanConfig
from ..crypto.signatures import Pki
from ..dag.block import Block
from ..errors import ConsensusError
from ..net.latency import LatencyModel, UniformLatencyModel
from ..net.network import Network
from ..sim.scheduler import Simulator
from ..types import NodeId, Round
from .jolteon import JolteonNode, JolteonParams
from .poa import PoA, PoaDisseminator

MakeBlock = Callable[[NodeId, Round, float], Block | None]


class _StrawmanReplica:
    """One party: a PoA disseminator plus a Jolteon replica."""

    def __init__(self, node_id, cfg, network, sim, pki, params, system):
        self.node_id = node_id
        self.system = system
        self.jolteon = JolteonNode(
            node_id, cfg.n, network, sim, pki, params,
            on_commit=lambda proposal, now: system._on_commit(node_id, proposal, now),
        )
        self.poa = PoaDisseminator(
            node_id, cfg, network, pki, on_poa=self._on_poa
        )
        self.network = network
        network.register(node_id, self._on_message)

    def _on_poa(self, poa: PoA) -> None:
        # Ship the PoA to everyone so whichever leader is current can include
        # it (the straw-man's extra hop).
        self.network.broadcast(self.node_id, _PoaGossip(poa))

    def _on_message(self, src, msg) -> None:
        if isinstance(msg, _PoaGossip):
            self.jolteon.submit(msg.poa)
            return
        if self.poa.on_message(src, msg):
            return
        self.jolteon.on_message(src, msg)


from dataclasses import dataclass

from ..net import sizes
from ..net.message import Message


@dataclass(slots=True)
class _PoaGossip(Message):
    poa: PoA

    def wire_size(self) -> int:
        return self.poa.wire_size() + sizes.HEADER_SIZE


class StrawmanSystem:
    """A runnable straw-man deployment."""

    def __init__(
        self,
        cfg: ClanConfig,
        latency: LatencyModel | None = None,
        bandwidth_bps: float | None = None,
        params: JolteonParams | None = None,
        make_block: MakeBlock | None = None,
        seed: int = 0,
    ) -> None:
        self.cfg = cfg
        self.sim = Simulator()
        self.network = Network(
            self.sim,
            cfg.n,
            latency=latency if latency is not None else UniformLatencyModel(0.05),
            bandwidth_bps=bandwidth_bps,
        )
        self.pki = Pki(cfg.n, seed=seed)
        self.make_block = make_block
        params = params if params is not None else JolteonParams()
        self.replicas = [
            _StrawmanReplica(i, cfg, self.network, self.sim, self.pki, params, self)
            for i in range(cfg.n)
        ]
        #: (node, PoA, commit time) per replica commit event.
        self.commit_log: dict[NodeId, list[tuple[PoA, float]]] = {
            i: [] for i in range(cfg.n)
        }
        self._seen_commits: dict[NodeId, set[bytes]] = {}
        self._round = 0

    def _on_commit(self, node_id: NodeId, proposal, now: float) -> None:
        seen = self._seen_commits.setdefault(node_id, set())
        for poa in proposal.batch:
            if poa.block_digest not in seen:
                seen.add(poa.block_digest)
                self.commit_log[node_id].append((poa, now))

    def start(self) -> None:
        for replica in self.replicas:
            replica.jolteon.start()

    def propose_blocks(self) -> None:
        """Every block proposer disseminates one block right now."""
        if self.make_block is None:
            raise ConsensusError("no block factory configured")
        self._round += 1
        for proposer in sorted(self.cfg.block_proposers):
            block = self.make_block(proposer, self._round, self.sim.now)
            if block is not None:
                self.replicas[proposer].poa.disseminate(block)

    def run(self, until: float, max_events: int | None = None) -> None:
        self.sim.run(until=until, max_events=max_events)

    def committed_everywhere(self) -> dict[bytes, float]:
        """block digest -> time committed by *all* replicas."""
        needed = self.cfg.n
        seen: dict[bytes, int] = {}
        worst: dict[bytes, float] = {}
        for node_id, entries in self.commit_log.items():
            for poa, when in entries:
                seen[poa.block_digest] = seen.get(poa.block_digest, 0) + 1
                worst[poa.block_digest] = max(worst.get(poa.block_digest, 0.0), when)
        return {d: worst[d] for d, count in seen.items() if count >= needed}
