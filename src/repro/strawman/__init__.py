"""The straw-man architecture the paper argues against (§1, §8).

A *separate* data-availability layer: proposers disseminate blocks to a clan
and collect a **proof of availability** (PoA, f_c+1 signed acks); PoAs are
then ordered by a traditional leader-based BFT SMR (a Jolteon-style two-chain
protocol, 5δ commit).  The pipeline is inherently sequential:

    disseminate (1δ) + ack (1δ) + ship PoA to leader (1δ)
    + queue (~1δ avg) + leader-SMR commit (5δ)  ≈ 8-9δ

versus the paper's clan-based DAG protocols, which pipeline dissemination
with consensus and commit leader vertices in 3δ.  The
`bench_strawman_latency` benchmark measures exactly this gap — the paper's
§8 comparison with Arete (8δ) and the §1 straw-man (6δ+).
"""

from .jolteon import JolteonNode, JolteonParams
from .poa import PoA, PoaDisseminator
from .system import StrawmanSystem

__all__ = ["PoA", "PoaDisseminator", "JolteonNode", "JolteonParams", "StrawmanSystem"]
