"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``analyze`` — determinism & protocol-invariant static analysis
  (``docs/ANALYSIS.md``): DET/MSG/SIM rule pack, inline suppressions,
  committed baseline; exits non-zero on any non-baselined finding.
* ``stats`` — committee statistics (Fig. 1 / §6.2 machinery).
* ``run`` — simulate one protocol configuration and print metrics.
* ``sweep`` — a load sweep (one Fig. 5-style curve) for one protocol.
* ``model`` — paper-scale analytical curves.
* ``figures`` — regenerate a figure's data series (same code as the benches).
* ``bench`` — run a full figure sweep through the parallel experiment engine
  (``--jobs N`` workers + the content-addressed result cache) and write the
  same ``results/*.csv`` files the pytest benches produce.
* ``profile`` — run one experiment under cProfile and print the hot-function
  report next to the tracer's per-hop decomposition (``docs/PERFORMANCE.md``).
* ``trace`` — run an instrumented experiment, export a JSONL trace, and print
  the per-stage latency report (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import argparse
import sys

from .bench.experiments import (
    fig1_clan_sizes,
    fig5_curve,
    fig5_model_curve,
    fig6_load_sweep,
    sec62_numbers,
    sec7_clan_sizes,
    table1_latency_matrix,
)
from .bench.model import AnalyticalModel, PAPER_LOADS
from .bench.reporting import format_table, results_path, write_csv
from .bench.runner import ExperimentConfig, run_experiment
from .bench.trace_report import format_trace_report
from .obs import Tracer
from .committees.hypergeometric import dishonest_majority_prob, min_clan_size
from .committees.multiclan import equal_partition_prob, max_equal_clans
from .types import max_faults, quorum_size


def _cmd_stats(args: argparse.Namespace) -> int:
    n = args.n
    budget = 10.0 ** -args.exponent
    f = max_faults(n)
    clan = min_clan_size(n, failure_prob=budget)
    rows = [
        {
            "quantity": "tribe",
            "value": f"n={n}, f={f}, quorum={quorum_size(n)}",
        },
        {
            "quantity": f"min single clan @ {budget:.0e}",
            "value": f"{clan} (failure {dishonest_majority_prob(n, f, clan):.2e})",
        },
    ]
    q = max_equal_clans(n, budget)
    if q > 1:
        rows.append(
            {
                "quantity": f"max equal clans @ {budget:.0e}",
                "value": f"{q} x {n // q} (failure {equal_partition_prob(n, q):.2e})",
            }
        )
    else:
        rows.append({"quantity": f"max equal clans @ {budget:.0e}", "value": "1 (no partition)"})
    print(format_table(rows, f"Committee statistics for n={n}"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        protocol=args.protocol,
        n=args.n,
        txns_per_proposal=args.load,
        clan_size=args.clan_size,
        clans=args.clans,
        bandwidth_bps=args.bandwidth_mbps * 1e6,
        duration=args.duration,
        warmup=min(args.duration / 3.0, 3.0),
        rbc_mode=args.rbc,
        edge_mode=args.edges,
        edge_fanout=args.edge_fanout,
    )
    metrics = run_experiment(config)
    print(format_table([
        {"metric": "throughput", "value": f"{metrics.throughput_tps / 1000.0:.2f} kTPS"},
        {"metric": "avg latency", "value": f"{metrics.avg_latency_s:.3f} s"},
        {"metric": "p95 latency", "value": f"{metrics.p95_latency_s:.3f} s"},
        {"metric": "rounds", "value": str(metrics.rounds)},
        {"metric": "committed txns", "value": str(metrics.committed_txns)},
        {"metric": "total traffic", "value": f"{metrics.total_bytes / 1e6:.1f} MB"},
    ], f"{args.protocol} n={args.n} load={args.load}"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    loads = [int(x) for x in args.loads.split(",")]
    rows = []
    for load in loads:
        config = ExperimentConfig(
            protocol=args.protocol,
            n=args.n,
            txns_per_proposal=load,
            clan_size=args.clan_size,
            clans=args.clans,
            bandwidth_bps=args.bandwidth_mbps * 1e6,
            duration=args.duration,
            warmup=min(args.duration / 3.0, 3.0),
            rbc_mode=args.rbc,
            edge_mode=args.edges,
            edge_fanout=args.edge_fanout,
        )
        metrics = run_experiment(config)
        rows.append({"load": load, **metrics.row()})
    print(format_table(rows, f"{args.protocol} n={args.n} load sweep"))
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    model = AnalyticalModel(n=args.n)
    rows = []
    rows += [p.row() for p in model.curve("sailfish", PAPER_LOADS)]
    if args.clan_size:
        rows += [
            p.row()
            for p in model.curve("single-clan", PAPER_LOADS, clan_size=args.clan_size)
        ]
    if args.clans > 1:
        rows += [p.row() for p in model.curve("multi-clan", PAPER_LOADS, clans=args.clans)]
    print(format_table(rows, f"Analytical model at n={args.n}"))
    return 0


_FIGURES = {
    "fig1": lambda: fig1_clan_sizes(),
    "table1": table1_latency_matrix,
    "sec62": sec62_numbers,
    "sec7": sec7_clan_sizes,
    "fig5a": lambda: fig5_curve("fig5a"),
    "fig5b": lambda: fig5_curve("fig5b"),
    "fig5c": lambda: fig5_curve("fig5c"),
    "fig5a-model": lambda: fig5_model_curve("fig5a"),
    "fig5b-model": lambda: fig5_model_curve("fig5b"),
    "fig5c-model": lambda: fig5_model_curve("fig5c"),
}


def _cmd_figures(args: argparse.Namespace) -> int:
    producer = _FIGURES.get(args.figure)
    if producer is None:
        print(f"unknown figure {args.figure!r}; choose from {sorted(_FIGURES)}")
        return 2
    rows = producer()
    print(format_table(rows, f"Reproduction data: {args.figure}"))
    return 0


#: Figure sweeps runnable through the parallel engine: name → rows producer.
BENCH_SWEEPS = {
    "fig5a": lambda jobs, cache: fig5_curve("fig5a", jobs=jobs, cache=cache),
    "fig5b": lambda jobs, cache: fig5_curve("fig5b", jobs=jobs, cache=cache),
    "fig5c": lambda jobs, cache: fig5_curve("fig5c", jobs=jobs, cache=cache),
    "fig6": lambda jobs, cache: fig6_load_sweep(jobs=jobs, cache=cache),
}


def _cmd_bench(args: argparse.Namespace) -> int:
    import os
    import time

    from .bench.parallel import resolve_jobs

    jobs = resolve_jobs(args.jobs, source="--jobs")
    if isinstance(args.jobs, str) and args.jobs.strip().lower() == "auto":
        print(f"pool size: {jobs} workers (auto, {os.cpu_count() or 1} CPUs)")
    cache = False if args.no_cache else None
    names = sorted(BENCH_SWEEPS) if args.sweep == "all" else [args.sweep]
    for name in names:
        start = time.perf_counter()
        rows = BENCH_SWEEPS[name](jobs, cache)
        wall = time.perf_counter() - start
        path = write_csv(rows, results_path(f"{name}_sim.csv"))
        print(format_table(rows, f"{name} sweep ({len(rows)} points, jobs={jobs}, "
                                 f"{wall:.1f} s wall)"))
        print(f"wrote {path}")
        if args.attribution:
            from .bench.experiments import sweep_attribution

            attribution = sweep_attribution(name)
            attr_path = write_csv(
                attribution, results_path(f"{name}_attribution.csv")
            )
            print(format_table(
                attribution, f"{name} critical-path attribution"
            ))
            print(f"wrote {attr_path}")
        print()
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .bench.profiling import (
        PROFILE_TARGETS,
        format_profile_report,
        profile_experiment,
    )

    _desc, config = PROFILE_TARGETS[args.target]
    report, profiler = profile_experiment(
        config,
        target=args.target,
        max_events=args.max_events,
        top=args.top,
        trace=args.trace,
    )
    text = format_profile_report(report)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"report written to {args.out}")
    if args.pstats:
        profiler.dump_stats(args.pstats)
        print(f"raw profile written to {args.pstats} (pstats format)")
    return 0


def _trace_fig5_smoke(tracer: Tracer) -> str:
    """A scaled-down Fig. 5 point (single-clan) under full instrumentation."""
    config = ExperimentConfig(
        protocol="single-clan",
        n=12,
        clan_size=6,
        txns_per_proposal=250,
        bandwidth_bps=400e6,
        duration=4.0,
        warmup=1.0,
    )
    metrics = run_experiment(config, tracer=tracer)
    return (
        f"single-clan n=12/6 load=250: {metrics.throughput_tps / 1000.0:.2f} kTPS, "
        f"avg latency {metrics.avg_latency_s:.3f} s"
    )


def _trace_smr_smoke(tracer: Tracer) -> str:
    """An end-to-end SMR run with clients, capturing client-observed latency."""
    from .committees.config import ClanConfig
    from .smr.runtime import SmrRuntime

    runtime = SmrRuntime(ClanConfig.single_clan(10, 5, seed=1), tracer=tracer)
    client = runtime.new_client("trace-client")
    runtime.start()
    for _ in range(20):
        runtime.submit(client, ("incr", "ctr", 1))
    runtime.run(until=6.0, max_events=10_000_000)
    return (
        f"smr single-clan n=10/5: {client.accepted_count()}/20 transactions "
        "accepted by the client"
    )


#: Instrumented experiments runnable via ``python -m repro trace <name>``.
TRACE_EXPERIMENTS = {
    "fig5_smoke": _trace_fig5_smoke,
    "smr_smoke": _trace_smr_smoke,
}


def _parse_sample(text: str) -> float:
    """Parse a sampling rate: a float (``0.0625``) or a ratio (``1/16``)."""
    if "/" in text:
        num, _, den = text.partition("/")
        return float(num) / float(den)
    return float(text)


def _cmd_trace(args: argparse.Namespace) -> int:
    producer = TRACE_EXPERIMENTS.get(args.experiment)
    if producer is None:
        print(
            f"unknown trace experiment {args.experiment!r}; "
            f"choose from {sorted(TRACE_EXPERIMENTS)}"
        )
        return 2
    tracer = Tracer(capacity=args.capacity, sample=_parse_sample(args.sample))
    summary = producer(tracer)
    if args.out:
        tracer.export_jsonl(args.out)
    print(format_trace_report(tracer))
    print()
    print(f"{summary}")
    print(f"trace records: {len(tracer)} kept, {tracer.dropped} dropped")
    if tracer.dropped:
        print(
            "WARNING: the ring buffer evicted records; aggregates above are "
            "skewed toward the end of the run — raise --capacity."
        )
    if args.out:
        print(f"trace written to {args.out}")
    if args.perfetto:
        from .obs import export_perfetto

        events = export_perfetto(tracer, args.perfetto)
        print(
            f"perfetto trace written to {args.perfetto} ({events} events; "
            "open at https://ui.perfetto.dev)"
        )
    return 0


#: Default analysis targets, relative to the working directory.
ANALYZE_DEFAULT_PATHS = ("src/repro",)

#: Default committed baseline file (used when present).
ANALYZE_DEFAULT_BASELINE = "analysis_baseline.json"


def _git_changed_files(targets: list[str]) -> list[str] | None:
    """Python files under ``targets`` that differ from the git merge-base
    with the main branch (plus untracked files) — the ``--changed`` lane.
    Returns ``None`` when git is unavailable or this is not a work tree.
    """
    import os
    import subprocess

    def git(*cmd: str) -> str | None:
        try:
            proc = subprocess.run(
                ["git", *cmd], capture_output=True, text=True, timeout=30
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        return proc.stdout if proc.returncode == 0 else None

    base = None
    for ref in ("origin/main", "main", "origin/master", "master"):
        out = git("merge-base", "HEAD", ref)
        if out:
            base = out.strip()
            break
    diff = git("diff", "--name-only", base) if base else git("diff", "--name-only", "HEAD")
    if diff is None:
        return None
    untracked = git("ls-files", "--others", "--exclude-standard") or ""
    changed = set()
    prefixes = tuple(t.rstrip("/") + "/" for t in targets)
    for name in (*diff.splitlines(), *untracked.splitlines()):
        name = name.strip()
        if not name.endswith(".py") or not os.path.exists(name):
            continue
        if name in targets or name.startswith(prefixes):
            changed.add(name)
    return sorted(changed)


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json
    import os

    from .analysis.engine import (
        Analyzer,
        apply_baseline,
        load_baseline,
        write_baseline,
    )
    from .analysis.project import load_project

    paths = args.paths or list(ANALYZE_DEFAULT_PATHS)
    # The interprocedural rules need the whole program even when only a
    # subset of files is being reported on, so the project context is always
    # built over the full target set (content-addressed cache keyed on the
    # source digest keeps repeat builds cheap).
    project = load_project(paths)
    if args.changed:
        changed = _git_changed_files(paths)
        if changed is None:
            print("analyze --changed requires git and a work tree")
            return 2
        if not changed:
            print("no changed python files under " + " ".join(paths))
            return 0
        analysis_paths = changed
    else:
        analysis_paths = paths
    analyzer = Analyzer(project=project)
    findings = analyzer.run(analysis_paths)

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(ANALYZE_DEFAULT_BASELINE):
        baseline_path = ANALYZE_DEFAULT_BASELINE
    if args.write_baseline:
        target = baseline_path or ANALYZE_DEFAULT_BASELINE
        write_baseline(findings, target)
        print(
            f"baseline written to {target} ({len(findings)} findings — "
            "fill in each entry's justification before committing)"
        )
        return 0
    baseline = load_baseline(baseline_path) if baseline_path else {}
    split = apply_baseline(findings, baseline)

    if args.sarif:
        from .analysis.sarif import write_sarif

        write_sarif(args.sarif, split.new, analyzer.rules)

    if args.json:
        payload = {
            "version": 1,
            "files": analyzer.files_analyzed,
            "suppressed": analyzer.suppressed,
            "baseline": baseline_path,
            "findings": [
                {**f.to_json(), "baselined": f in split.baselined}
                for f in findings
            ],
            "new_count": len(split.new),
            "baselined_count": len(split.baselined),
            "stale_baseline": [
                {"rule": rule, "path": path, "snippet": snippet}
                for rule, path, snippet in split.stale
            ],
            "parse_errors": [
                {"path": path, "error": error}
                for path, error in analyzer.parse_errors
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        for finding in split.new:
            print(finding.format())
        for rule, path, snippet in split.stale:
            print(
                f"stale baseline entry: {rule} at {path} "
                f"({snippet!r} no longer found — prune it)"
            )
        for path, error in analyzer.parse_errors:
            print(f"parse error: {path}: {error}")
        print(
            f"{analyzer.files_analyzed} files: {len(split.new)} new finding(s), "
            f"{len(split.baselined)} baselined, {analyzer.suppressed} suppressed, "
            f"{len(split.stale)} stale baseline entr(ies)"
        )
    return 1 if split.new or analyzer.parse_errors else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from .chaos import (
        EXTENDED_SCENARIOS,
        SCENARIOS,
        SMOKE_SCENARIOS,
        load_scenarios,
        run_scenario,
    )

    if args.list:
        for title, group in (
            ("SMOKE (CI chaos-smoke set)", SMOKE_SCENARIOS),
            ("EXTENDED (local runs / resilience bench)", EXTENDED_SCENARIOS),
        ):
            print(title)
            for scenario in group:
                tags = [
                    tag
                    for tag in (
                        scenario.rbc_mode if scenario.rbc_mode != "two-round" else "",
                        scenario.edge_mode if scenario.edge_mode != "full" else "",
                    )
                    if tag
                ]
                mode = f" [{','.join(tags)}]" if tags else ""
                print(f"  {scenario.name + mode:30s} {scenario.description}")
            print()
        return 0
    if args.file:
        with open(args.file, encoding="utf-8") as handle:
            scenarios = load_scenarios(handle.read())
    elif args.scenarios:
        unknown = [name for name in args.scenarios if name not in SCENARIOS]
        if unknown:
            print(f"unknown scenarios {unknown}; choose from {sorted(SCENARIOS)}")
            return 2
        scenarios = [SCENARIOS[name] for name in args.scenarios]
    elif args.all:
        scenarios = list(SCENARIOS.values())
    else:
        scenarios = list(SMOKE_SCENARIOS)
    if args.seed is not None:
        scenarios = [replace(s, seed=args.seed) for s in scenarios]
    tracer = (
        Tracer(capacity=args.capacity, sample=_parse_sample(args.sample))
        if (args.out or args.perfetto)
        else None
    )
    failed = 0
    for scenario in scenarios:
        result = run_scenario(scenario, tracer=tracer, monitors=args.monitors)
        status = "PASS" if result.ok else "FAIL"
        print(f"[{status}] {scenario.name} (seed {scenario.seed})")
        for check in result.checks:
            mark = "ok " if check.ok else "XXX"
            print(f"    {mark} {check.name}: {check.detail}")
        headline = ", ".join(
            f"{key}={value}"
            for key, value in result.stats.items()
            if isinstance(value, (int, float))
        )
        print(f"        {headline}")
        if not result.ok:
            failed += 1
    if args.out and tracer is not None:
        tracer.export_jsonl(args.out)
        print(f"trace written to {args.out}")
    if args.perfetto and tracer is not None:
        from .obs import export_perfetto

        events = export_perfetto(tracer, args.perfetto)
        print(f"perfetto trace written to {args.perfetto} ({events} events)")
    print(f"{len(scenarios) - failed}/{len(scenarios)} scenarios passed")
    return 1 if failed else 0


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from .obs import (
        diff_summaries,
        export_perfetto,
        load_summary,
        prometheus_text,
        save_summary,
    )
    from .obs.regression import format_findings, has_regressions
    from .obs.tracer import TraceFile

    if args.obs_command == "diff":
        base = load_summary(args.base)
        cur = load_summary(args.current)
        findings = diff_summaries(
            base, cur, rel_tol=args.rel_tol, quantile_tol=args.quantile_tol
        )
        if args.json:
            print(json.dumps({"findings": findings}, indent=2))
        else:
            print(format_findings(findings))
        return 1 if has_regressions(findings) else 0
    if args.obs_command == "summary":
        summary = load_summary(args.trace)
        if args.out:
            save_summary(summary, args.out)
            print(f"summary written to {args.out}")
        if args.prom:
            with open(args.prom, "w", encoding="utf-8") as fh:
                fh.write(prometheus_text(summary))
            print(f"prometheus dump written to {args.prom}")
        if not args.out and not args.prom:
            print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    if args.obs_command == "perfetto":
        events = export_perfetto(TraceFile(args.trace), args.out)
        print(
            f"perfetto trace written to {args.out} ({events} events; "
            "open at https://ui.perfetto.dev)"
        )
        return 0
    print(f"unknown obs command {args.obs_command!r}")
    return 2


def _cmd_forensics(args: argparse.Namespace) -> int:
    from .forensics.report import main as forensics_main

    argv = [args.trace]
    if args.commit:
        argv += ["--commit", args.commit]
    if args.attribution:
        argv.append("--attribution")
    if args.anomalies:
        argv.append("--anomalies")
    if args.json:
        argv.append("--json")
    return forensics_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Clan-based DAG BFT SMR reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser(
        "analyze",
        help="determinism & protocol-invariant static analysis (docs/ANALYSIS.md)",
    )
    analyze.add_argument(
        "paths",
        nargs="*",
        help=f"files/directories to analyze (default: {' '.join(ANALYZE_DEFAULT_PATHS)})",
    )
    analyze.add_argument(
        "--json", action="store_true", help="emit a machine-readable report"
    )
    analyze.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline file of grandfathered findings "
            f"(default: {ANALYZE_DEFAULT_BASELINE} when present)"
        ),
    )
    analyze.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    analyze.add_argument(
        "--changed",
        action="store_true",
        help=(
            "report only on files differing from the git merge-base with "
            "main (fast pre-commit lane; interprocedural rules still see "
            "the whole program)"
        ),
    )
    analyze.add_argument(
        "--sarif",
        default=None,
        metavar="PATH",
        help="also write new findings as SARIF 2.1.0 (GitHub code scanning)",
    )
    analyze.set_defaults(fn=_cmd_analyze)

    stats = sub.add_parser("stats", help="committee statistics for a tribe size")
    stats.add_argument("n", type=int)
    stats.add_argument("--exponent", type=int, default=6, help="failure budget 10^-e")
    stats.set_defaults(fn=_cmd_stats)

    def add_run_args(p):
        p.add_argument("--protocol", default="single-clan",
                       choices=["sailfish", "single-clan", "multi-clan"])
        p.add_argument("--n", type=int, default=16)
        p.add_argument("--clan-size", type=int, default=None)
        p.add_argument("--clans", type=int, default=2)
        p.add_argument("--bandwidth-mbps", type=float, default=400.0)
        p.add_argument("--duration", type=float, default=8.0)
        p.add_argument(
            "--rbc", default="two-round",
            choices=["two-round", "bracha", "optimistic", "prefix"],
            help="RBC variant for vertex dissemination (docs/FAULTS.md)",
        )
        p.add_argument(
            "--edges", default="full", choices=["full", "sparse"],
            help="strong-edge policy: full (paper) or sparse "
            "(Clownfish-style fan-out with the any-edge commit rule)",
        )
        p.add_argument(
            "--edge-fanout", type=int, default=0,
            help="strong edges per non-leader vertex in sparse mode "
            "(0 = auto ~log2 n)",
        )

    run = sub.add_parser("run", help="simulate one configuration")
    add_run_args(run)
    run.add_argument("--load", type=int, default=500, help="txns per proposal")
    run.set_defaults(fn=_cmd_run)

    sweep = sub.add_parser("sweep", help="simulate a load sweep")
    add_run_args(sweep)
    sweep.add_argument("--loads", default="32,250,1000,3000")
    sweep.set_defaults(fn=_cmd_sweep)

    model = sub.add_parser("model", help="paper-scale analytical curves")
    model.add_argument("--n", type=int, default=150)
    model.add_argument("--clan-size", type=int, default=80)
    model.add_argument("--clans", type=int, default=2)
    model.set_defaults(fn=_cmd_model)

    figures = sub.add_parser("figures", help="regenerate a paper artifact's data")
    figures.add_argument("figure", choices=sorted(_FIGURES))
    figures.set_defaults(fn=_cmd_figures)

    bench = sub.add_parser(
        "bench",
        help="run a figure sweep through the parallel engine and write its CSV",
    )
    bench.add_argument("sweep", choices=[*sorted(BENCH_SWEEPS), "all"])
    bench.add_argument(
        "--jobs", default=None,
        help="worker processes: an integer or 'auto' to size the pool from "
        "the CPU count (default: REPRO_JOBS, i.e. serial)",
    )
    bench.add_argument(
        "--no-cache", action="store_true",
        help="bypass the content-addressed result cache (results/.cache/)",
    )
    bench.add_argument(
        "--attribution", action="store_true",
        help="also write a critical-path attribution CSV for the sweep's "
        "mid-load point (traced serial rerun; see docs/FORENSICS.md)",
    )
    bench.set_defaults(fn=_cmd_bench)

    profile = sub.add_parser(
        "profile",
        help="run one experiment under cProfile and print the hot-function report",
    )
    from .bench.profiling import PROFILE_TARGETS

    profile.add_argument(
        "target", nargs="?", default="smoke", choices=sorted(PROFILE_TARGETS)
    )
    profile.add_argument("--top", type=int, default=20, help="hot functions to show")
    profile.add_argument(
        "--trace", action="store_true",
        help="attach the tracer and print the per-hop decomposition alongside",
    )
    profile.add_argument(
        "--max-events", type=int, default=None, help="cap simulator events"
    )
    profile.add_argument("--out", default=None, help="also write the report here")
    profile.add_argument(
        "--pstats", default=None, help="dump the raw profile (pstats) here"
    )
    profile.set_defaults(fn=_cmd_profile)

    trace = sub.add_parser(
        "trace", help="run an instrumented experiment and print a latency report"
    )
    trace.add_argument("experiment", choices=sorted(TRACE_EXPERIMENTS))
    trace.add_argument("--out", default=None, help="write the JSONL trace here")
    trace.add_argument(
        "--capacity",
        type=int,
        default=1_000_000,
        help="trace ring-buffer capacity (oldest records drop beyond this)",
    )
    trace.add_argument(
        "--sample",
        default="1",
        metavar="RATE",
        help="head-sampling rate for causal traces: a float or a ratio "
        "like 1/16 (default 1: trace everything)",
    )
    trace.add_argument(
        "--perfetto",
        default=None,
        metavar="PATH",
        help="also write a Chrome-trace/Perfetto JSON for ui.perfetto.dev",
    )
    trace.set_defaults(fn=_cmd_trace)

    chaos = sub.add_parser(
        "chaos",
        help="run fault-injection scenarios and check safety/liveness invariants",
    )
    chaos.add_argument(
        "scenarios",
        nargs="*",
        help="scenario names (default: the CI smoke set)",
    )
    chaos.add_argument("--list", action="store_true", help="list known scenarios")
    chaos.add_argument("--all", action="store_true", help="run every built-in scenario")
    chaos.add_argument(
        "--file", default=None, help="load scenarios from a JSON file instead"
    )
    chaos.add_argument(
        "--seed", type=int, default=None, help="override every scenario's seed"
    )
    chaos.add_argument("--out", default=None, help="write a JSONL trace here")
    chaos.add_argument("--capacity", type=int, default=1_000_000)
    chaos.add_argument(
        "--sample", default="1", metavar="RATE",
        help="head-sampling rate for causal traces (float or ratio like 1/16)",
    )
    chaos.add_argument(
        "--perfetto", default=None, metavar="PATH",
        help="also write a Chrome-trace/Perfetto JSON of the run",
    )
    chaos.add_argument(
        "--monitors",
        action="store_true",
        help="attach the online health monitors (stall watchdog, prefix "
        "safety, equivocation evidence); any safety anomaly fails the run",
    )
    chaos.set_defaults(fn=_cmd_chaos)

    obs = sub.add_parser(
        "obs",
        help="observability toolkit: trace summaries, Perfetto export, and "
        "cross-run regression diffs (docs/OBSERVABILITY.md)",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_diff = obs_sub.add_parser(
        "diff",
        help="compare two runs (JSONL traces or saved summaries); exits 1 "
        "on a regression",
    )
    obs_diff.add_argument("base", help="baseline: trace.jsonl or summary.json")
    obs_diff.add_argument("current", help="candidate: trace.jsonl or summary.json")
    obs_diff.add_argument(
        "--rel-tol", type=float, default=0.10,
        help="relative tolerance for exact aggregates (counter totals, means)",
    )
    obs_diff.add_argument(
        "--quantile-tol", type=float, default=0.50,
        help="relative tolerance for histogram quantiles (bucket estimates)",
    )
    obs_diff.add_argument(
        "--json", action="store_true", help="emit findings as JSON"
    )
    obs_diff.set_defaults(fn=_cmd_obs)
    obs_summary = obs_sub.add_parser(
        "summary",
        help="reduce a JSONL trace to a metrics summary (histograms, "
        "counters, gauges)",
    )
    obs_summary.add_argument("trace", help="trace.jsonl (or an existing summary)")
    obs_summary.add_argument(
        "--out", default=None, help="write the summary JSON here"
    )
    obs_summary.add_argument(
        "--prom", default=None,
        help="write a Prometheus-style text dump here",
    )
    obs_summary.set_defaults(fn=_cmd_obs)
    obs_perfetto = obs_sub.add_parser(
        "perfetto", help="convert a JSONL trace to Chrome-trace/Perfetto JSON"
    )
    obs_perfetto.add_argument("trace", help="path to a trace.jsonl file")
    obs_perfetto.add_argument("out", help="output .json path")
    obs_perfetto.set_defaults(fn=_cmd_obs)

    forensics = sub.add_parser(
        "forensics",
        help="per-commit critical-path attribution and anomaly report "
        "from a JSONL trace (docs/FORENSICS.md)",
    )
    forensics.add_argument("trace", help="path to a trace.jsonl file")
    forensics.add_argument(
        "--commit", default=None, metavar="ID",
        help="waterfall drill-down for one commit (digest prefix, "
        "round:proposer, or txn id)",
    )
    forensics.add_argument(
        "--attribution", action="store_true",
        help="only the attribution sections",
    )
    forensics.add_argument(
        "--anomalies", action="store_true", help="only the anomaly sections"
    )
    forensics.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    forensics.set_defaults(fn=_cmd_forensics)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command in ("run", "sweep") and args.protocol == "single-clan":
        if args.clan_size is None:
            args.clan_size = max(4, args.n // 2)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
