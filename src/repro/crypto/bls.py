"""BLS-style multi-signature simulation.

The paper aggregates ECHO signatures into a BLS multi-signature whose wire
size is one group element plus an ``n``-bit signer bitmap (§4).  We simulate
aggregation by hashing the individual tags in signer order; verification
recomputes the expected aggregate from the PKI.  The paper's optimization of
verifying only the aggregate (and falling back to per-signer verification to
identify a faulty signer) is mirrored by :func:`find_invalid_signers`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..errors import CryptoError
from ..net import sizes
from ..types import NodeId
from .signatures import Pki, Signature


@dataclass(frozen=True, slots=True)
class MultiSignature:
    """Aggregate signature over one ``message_digest`` by ``signers``."""

    message_digest: bytes
    signers: frozenset[NodeId]
    tag: bytes

    def wire_size(self, n: int) -> int:
        """Bytes on the wire: one BLS element + an n-party bitmap."""
        return sizes.multisig_size(n)


def _aggregate_tag(tags_by_signer: list[tuple[NodeId, bytes]]) -> bytes:
    h = hashlib.sha256()
    for signer, tag in sorted(tags_by_signer):
        h.update(signer.to_bytes(4, "big"))
        h.update(tag)
    return h.digest()[:16]


def aggregate(signatures: list[Signature]) -> MultiSignature:
    """Aggregate individual signatures *without verifying them first*.

    Matches the paper's fast path: aggregation is cheap; the (single)
    aggregate verification catches any bad constituent.
    """
    if not signatures:
        raise CryptoError("cannot aggregate an empty signature set")
    message_digest = signatures[0].message_digest
    seen: set[NodeId] = set()
    pairs: list[tuple[NodeId, bytes]] = []
    for sig in signatures:
        if sig.message_digest != message_digest:
            raise CryptoError("aggregating signatures over different digests")
        if sig.signer in seen:
            raise CryptoError(f"duplicate signer {sig.signer} in aggregate")
        seen.add(sig.signer)
        pairs.append((sig.signer, sig.tag))
    return MultiSignature(message_digest, frozenset(seen), _aggregate_tag(pairs))


def verify_aggregate(pki: Pki, multi: MultiSignature) -> bool:
    """Verify the aggregate in one shot (the typical, all-honest case)."""
    try:
        expected = _aggregate_tag(
            [(s, pki.expected_tag(s, multi.message_digest)) for s in multi.signers]
        )
    except CryptoError:
        return False
    return expected == multi.tag


def find_invalid_signers(pki: Pki, signatures: list[Signature]) -> list[NodeId]:
    """Per-signer verification fallback: identify (to penalize) bad signers."""
    return [sig.signer for sig in signatures if not pki.verify(sig)]
