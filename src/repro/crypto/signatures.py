"""Simulated digital signatures with a PKI.

A :class:`Signature` is a keyed tag over a message digest.  Signing requires
the signer's secret key; :class:`Pki` verification recomputes the tag.  Within
the simulation this gives real unforgeability: Byzantine parties can replay
signatures they observed, but cannot mint a signature for a message an honest
party never signed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache

from ..errors import CryptoError
from ..types import NodeId


def _tag(secret: bytes, message_digest: bytes) -> bytes:
    return hashlib.sha256(secret + message_digest).digest()[:16]


@dataclass(frozen=True, slots=True)
class Signature:
    """A signature by ``signer`` over ``message_digest``."""

    signer: NodeId
    message_digest: bytes
    tag: bytes


@dataclass(frozen=True, slots=True)
class KeyPair:
    """A party's signing key.  ``secret`` never travels on the wire."""

    node_id: NodeId
    secret: bytes

    def sign(self, message_digest: bytes) -> Signature:
        """Sign a 32-byte message digest."""
        if not isinstance(message_digest, bytes):
            raise CryptoError("can only sign byte digests")
        return Signature(self.node_id, message_digest, _tag(self.secret, message_digest))


class Pki:
    """Key registry for ``n`` parties; issues keys and verifies signatures.

    >>> pki = Pki(4, seed=7)
    >>> sig = pki.key(1).sign(b"x" * 32)
    >>> pki.verify(sig)
    True
    >>> forged = Signature(2, b"x" * 32, sig.tag)
    >>> pki.verify(forged)
    False
    """

    def __init__(self, n: int, seed: int = 0, tag_cache_size: int = 16384) -> None:
        if n < 1:
            raise CryptoError(f"PKI needs at least one party, got {n}")
        self.n = n
        self._keys = [
            KeyPair(i, hashlib.sha256(f"repro-key:{seed}:{i}".encode()).digest())
            for i in range(n)
        ]
        # Every quorum checker re-verifies the same (signer, digest) pairs —
        # one ECHO digest is checked by n receivers and again inside each
        # aggregate — so valid tags are memoized.  The LRU bound keeps memory
        # flat over long runs; the cache is per-Pki, so distinct deployments
        # (different seeds) never share entries.
        self._tag_cache = lru_cache(maxsize=tag_cache_size)(self._compute_tag)

    def _compute_tag(self, signer: NodeId, message_digest: bytes) -> bytes:
        return _tag(self._keys[signer].secret, message_digest)

    def key(self, node_id: NodeId) -> KeyPair:
        """The signing key of ``node_id`` (handed only to that node's logic)."""
        if not 0 <= node_id < self.n:
            raise CryptoError(f"unknown party {node_id}")
        return self._keys[node_id]

    def verify(self, sig: Signature) -> bool:
        """Check that ``sig`` was produced with the signer's secret key."""
        if not 0 <= sig.signer < self.n:
            return False
        return self._tag_cache(sig.signer, sig.message_digest) == sig.tag

    def expected_tag(self, signer: NodeId, message_digest: bytes) -> bytes:
        """Recompute the valid tag for (signer, digest) — used by BLS checks."""
        if not 0 <= signer < self.n:
            raise CryptoError(f"unknown party {signer}")
        return self._tag_cache(signer, message_digest)
