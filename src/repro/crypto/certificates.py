"""Quorum certificates built from multi-signatures.

The two-round RBC (Fig. 3) multicasts ``EC_r(m)``: 2f+1 ECHO signatures, at
least f_c+1 of them from the clan.  :class:`QuorumCertificate` packages a
multi-signature with the threshold checks the receiving side must run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CryptoError
from ..types import NodeId
from .bls import MultiSignature, aggregate, verify_aggregate
from .signatures import Pki, Signature


@dataclass(frozen=True, slots=True)
class QuorumCertificate:
    """A certificate that ``signers`` signed ``message_digest``."""

    multi: MultiSignature

    @property
    def message_digest(self) -> bytes:
        return self.multi.message_digest

    @property
    def signers(self) -> frozenset[NodeId]:
        return self.multi.signers

    def wire_size(self, n: int) -> int:
        return self.multi.wire_size(n)


def build_certificate(signatures: list[Signature]) -> QuorumCertificate:
    """Aggregate raw signatures into a certificate (no thresholds checked)."""
    return QuorumCertificate(aggregate(signatures))


def verify_certificate(
    pki: Pki,
    cert: QuorumCertificate,
    quorum: int,
    clan: frozenset[NodeId] | None = None,
    clan_quorum: int = 0,
) -> bool:
    """Verify signature validity and thresholds.

    Args:
        quorum: total signers required (tribe 2f+1).
        clan: if given, at least ``clan_quorum`` signers must belong to it
            (the tribe-assisted f_c+1-from-clan condition).
    """
    if len(cert.signers) < quorum:
        return False
    if clan is not None and len(cert.signers & clan) < clan_quorum:
        return False
    return verify_aggregate(pki, cert.multi)


def require_valid_certificate(
    pki: Pki,
    cert: QuorumCertificate,
    quorum: int,
    clan: frozenset[NodeId] | None = None,
    clan_quorum: int = 0,
) -> None:
    """Raise :class:`CryptoError` unless the certificate verifies."""
    if not verify_certificate(pki, cert, quorum, clan, clan_quorum):
        raise CryptoError("invalid quorum certificate")
