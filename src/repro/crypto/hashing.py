"""Canonical hashing helpers (the paper's ``H(x)``, κ = 32 bytes)."""

from __future__ import annotations

import hashlib


def digest(*parts: object) -> bytes:
    """SHA-256 over the length-prefixed canonical encoding of ``parts``.

    Length prefixing makes the encoding injective, so ``digest("ab", "c")``
    and ``digest("a", "bc")`` differ.

    >>> digest("ab", "c") != digest("a", "bc")
    True
    """
    h = hashlib.sha256()
    for part in parts:
        raw = part if isinstance(part, bytes) else repr(part).encode()
        h.update(len(raw).to_bytes(8, "big"))
        h.update(raw)
    return h.digest()


def digest_hex(*parts: object) -> str:
    """Hex form of :func:`digest`, convenient for logs and dict keys."""
    return digest(*parts).hex()
