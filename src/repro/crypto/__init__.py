"""Cryptographic substrate: real hashing, simulated-but-unforgeable signatures.

The simulation needs signatures that are (a) cheap enough to mint millions of
times, (b) impossible for a simulated Byzantine party to forge, and (c)
structurally realistic (bytes on the wire, aggregation, bitmaps).  We use
keyed-MAC style tags over SHA-256: the :class:`~repro.crypto.signatures.Pki`
holds every party's secret, signing computes ``SHA256(secret ‖ digest)``, and
verification recomputes it.  A Byzantine node in the simulation can only forge
a signature if it holds the victim's secret — which it never does.

BLS-style multi-signatures (:mod:`repro.crypto.bls`) aggregate individual tags
and carry a signer bitmap, matching the paper's wire-size accounting.
"""

from .bls import MultiSignature, aggregate
from .certificates import QuorumCertificate
from .hashing import digest, digest_hex
from .signatures import KeyPair, Pki, Signature

__all__ = [
    "digest",
    "digest_hex",
    "KeyPair",
    "Pki",
    "Signature",
    "MultiSignature",
    "aggregate",
    "QuorumCertificate",
]
