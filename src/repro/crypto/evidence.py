"""Transferable misbehaviour evidence (accountability).

The paper's implementation notes the need to "identify and penalize the
faulty party" when aggregated signatures fail.  In the signed (two-round)
dissemination mode, equivocation is *provable*: two VAL signatures by the
same origin over different vertex digests for the same round form a fraud
proof any third party can verify against the PKI alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CryptoError
from ..types import NodeId, Round
from .signatures import Pki, Signature


@dataclass(frozen=True)
class EquivocationEvidence:
    """Proof that ``origin`` signed two conflicting proposals in one round.

    ``statement_of(digest)`` must reproduce the signed statement from the
    conflicting payload digests (protocol-specific domain separation), so the
    evidence pins down *which* protocol message was equivocated.
    """

    origin: NodeId
    round: Round
    digest_a: bytes
    digest_b: bytes
    signature_a: Signature
    signature_b: Signature

    def verify(self, pki: Pki, statement_of) -> bool:
        """Check the proof: both signatures valid, same signer, different
        digests, statements matching the claimed (origin, round, digest)."""
        if self.digest_a == self.digest_b:
            return False
        for digest_, signature in (
            (self.digest_a, self.signature_a),
            (self.digest_b, self.signature_b),
        ):
            if signature.signer != self.origin:
                return False
            if signature.message_digest != statement_of(self.origin, self.round, digest_):
                return False
            if not pki.verify(signature):
                return False
        return True


class EvidencePool:
    """Per-node collector: turns observed conflicting signed VALs into proofs."""

    def __init__(self) -> None:
        #: (origin, round) -> {digest: signature}
        self._seen: dict[tuple[NodeId, Round], dict[bytes, Signature]] = {}
        self.proofs: list[EquivocationEvidence] = []
        self._convicted: set[tuple[NodeId, Round]] = set()

    def record(
        self, origin: NodeId, round_: Round, digest_: bytes, signature: Signature
    ) -> EquivocationEvidence | None:
        """Record a signed proposal; returns evidence on the first conflict."""
        if signature.signer != origin:
            raise CryptoError("signature does not belong to the claimed origin")
        key = (origin, round_)
        seen = self._seen.setdefault(key, {})
        if digest_ in seen:
            return None
        seen[digest_] = signature
        if len(seen) >= 2 and key not in self._convicted:
            self._convicted.add(key)
            (d_a, s_a), (d_b, s_b) = sorted(seen.items())[:2]
            proof = EquivocationEvidence(origin, round_, d_a, d_b, s_a, s_b)
            self.proofs.append(proof)
            return proof
        return None

    def convicted(self) -> set[NodeId]:
        """Parties with at least one equivocation proof against them."""
        return {proof.origin for proof in self.proofs}
