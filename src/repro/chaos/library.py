"""Built-in chaos scenarios.

The first three are the CI smoke set (``chaos-smoke`` job): one per fault
family, small tribes, short horizons.  The rest stretch the same machinery —
composed faults, Byzantine mixes, duplicate storms — for local runs and the
resilience benchmark.
"""

from __future__ import annotations

from ..errors import ConfigError
from .scenario import CrashSpec, PartitionSpec, Scenario

#: CI smoke set: deterministic, fast, one scenario per fault family.
SMOKE_SCENARIOS = (
    Scenario(
        name="drop05",
        description="5% i.i.d. per-link drop over the reliable channel; "
        "retransmission must mask every loss.",
        n=4,
        duration=20.0,
        drop_prob=0.05,
        seed=11,
        min_commits=50,
    ),
    Scenario(
        name="partition_heal",
        description="Minority {0,1} partitioned off for 5s, then healed; "
        "commits must resume after GST.",
        n=4,
        duration=25.0,
        partitions=(PartitionSpec(start=5.0, end=10.0, groups=((0, 1),)),),
        reliable=True,
        seed=12,
        min_commits=50,
    ),
    Scenario(
        name="crash_recover",
        description="Node 3 fail-stops at t=4 and recovers at t=16 (far "
        "beyond the sync gap); it must catch up and rejoin.",
        n=4,
        duration=40.0,
        crashes=(CrashSpec(node=3, down_at=4.0, up_at=16.0),),
        seed=13,
        min_commits=50,
        max_round_lag=10,
    ),
)

#: Extended set for local chaos runs and the resilience bench.
EXTENDED_SCENARIOS = (
    Scenario(
        name="dup_storm",
        description="8% duplication + 2% drop: the transport must suppress "
        "every duplicate and repair every loss.",
        n=4,
        duration=20.0,
        drop_prob=0.02,
        duplicate_prob=0.08,
        seed=21,
        min_commits=50,
    ),
    Scenario(
        name="split_brain",
        description="Back-to-back partitions isolating different halves; no "
        "side ever holds a quorum alone, so commits pause and resume twice.",
        n=4,
        duration=35.0,
        partitions=(
            PartitionSpec(start=4.0, end=8.0, groups=((0, 1),)),
            PartitionSpec(start=12.0, end=16.0, groups=((2, 3),)),
        ),
        reliable=True,
        seed=22,
        min_commits=50,
    ),
    Scenario(
        name="rolling_crashes",
        description="Two nodes crash and recover in sequence (never more "
        "than one down at once); each must catch up.",
        n=4,
        duration=50.0,
        crashes=(
            CrashSpec(node=1, down_at=3.0, up_at=12.0),
            CrashSpec(node=2, down_at=18.0, up_at=27.0),
        ),
        seed=23,
        min_commits=80,
    ),
    Scenario(
        name="lossy_crash_combo",
        description="3% drop, a 4s partition, and a crash/recover all in one "
        "run — the composed worst case the tentpole must survive.",
        n=4,
        duration=50.0,
        drop_prob=0.03,
        partitions=(PartitionSpec(start=6.0, end=10.0, groups=((0,),)),),
        crashes=(CrashSpec(node=2, down_at=14.0, up_at=26.0),),
        seed=24,
        min_commits=50,
        max_round_lag=12,
    ),
    Scenario(
        name="byz_lazy_lossy",
        description="A lazy voter under 3% loss: leader votes go missing "
        "both maliciously and physically; timeouts plus NVCs keep rounds "
        "advancing.",
        n=4,
        duration=25.0,
        drop_prob=0.03,
        byzantine=((3, "lazy-voter"),),
        seed=25,
        leader_timeout=1.0,
        min_commits=20,
    ),
    Scenario(
        name="optimistic-crossover",
        description="Optimistic RBC under 5% loss: most instances still "
        "deliver on the 2-round fast path, but dropped echoes must drive "
        "measurable timeouts onto the pessimistic READY path.",
        n=4,
        duration=20.0,
        drop_prob=0.05,
        rbc_mode="optimistic",
        seed=31,
        min_commits=30,
        extra={"expect_fast": True, "expect_fallback": True},
    ),
    Scenario(
        name="slow-proposer-prefix",
        description="A proposer drip-feeds its block tail; the certified-"
        "prefix rule must keep committing its non-empty prefixes with no "
        "round stall.",
        n=4,
        duration=20.0,
        rbc_mode="prefix",
        byzantine=((2, "slow-proposer"),),
        seed=32,
        min_commits=30,
        extra={"expect_prefix": True},
    ),
    Scenario(
        name="tail-withholder",
        description="A proposer permanently withholds half its chunks; "
        "voters certify exactly the disseminated prefix and the withheld "
        "tail is provably attributed, never waited for.",
        n=4,
        duration=20.0,
        rbc_mode="prefix",
        byzantine=((1, "tail-withholder"),),
        seed=33,
        min_commits=30,
        extra={"expect_prefix": True},
    ),
    Scenario(
        name="sparse-edges",
        description="Sparse strong edges (Clownfish-style fan-out) under 3% "
        "loss plus a crash/recover: the compensating any-edge commit rule "
        "must keep every honest log prefix-consistent and the recovered "
        "node must catch up over the thinner DAG.",
        n=8,
        duration=40.0,
        edge_mode="sparse",
        drop_prob=0.03,
        crashes=(CrashSpec(node=5, down_at=6.0, up_at=18.0),),
        seed=34,
        min_commits=50,
        max_round_lag=10,
    ),
    Scenario(
        name="byz_equivocator_partition",
        description="An equivocating proposer during a partition: RBC must "
        "block a split delivery even while the network is split.",
        n=4,
        duration=30.0,
        partitions=(PartitionSpec(start=5.0, end=9.0, groups=((0, 1),)),),
        byzantine=((2, "equivocator"),),
        reliable=True,
        seed=26,
        min_commits=30,
    ),
)

ALL_SCENARIOS = SMOKE_SCENARIOS + EXTENDED_SCENARIOS
SCENARIOS = {scenario.name: scenario for scenario in ALL_SCENARIOS}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; known: {', '.join(sorted(SCENARIOS))}"
        ) from None
