"""Scenario-driven fault injection ("chaos") harness.

Declarative fault scripts (:mod:`repro.chaos.scenario`) run against a full
deployment (:mod:`repro.chaos.runner`) and are judged on the protocol's
actual guarantees: safety (byte-identical committed prefixes), liveness
(progress after GST), and crash-recovery catch-up.  ``python -m repro chaos``
is the CLI front end; :data:`repro.chaos.library.SMOKE_SCENARIOS` is the CI
gate.  See ``docs/FAULTS.md``.
"""

from .library import (
    ALL_SCENARIOS,
    EXTENDED_SCENARIOS,
    SCENARIOS,
    SMOKE_SCENARIOS,
    get_scenario,
)
from .runner import (
    ChaosResult,
    InvariantCheck,
    build_deployment,
    build_faults,
    run_scenario,
    run_scenarios,
)
from .scenario import (
    CrashSpec,
    PartitionSpec,
    Scenario,
    dump_scenarios,
    load_scenarios,
)

__all__ = [
    "Scenario",
    "PartitionSpec",
    "CrashSpec",
    "load_scenarios",
    "dump_scenarios",
    "ChaosResult",
    "InvariantCheck",
    "run_scenario",
    "run_scenarios",
    "build_deployment",
    "build_faults",
    "SCENARIOS",
    "SMOKE_SCENARIOS",
    "EXTENDED_SCENARIOS",
    "ALL_SCENARIOS",
    "get_scenario",
]
