"""Scenario execution and invariant checking.

:func:`run_scenario` builds a deployment from a :class:`~repro.chaos.scenario.Scenario`,
runs it, and evaluates the robustness invariants.  Each invariant becomes an
:class:`InvariantCheck` row so failures carry enough detail to debug from CI
output alone; the run as a whole passes only if every check does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..committees.config import ClanConfig
from ..consensus.byzantine import (
    ByzantineBehavior,
    EquivocatingProposer,
    LazyVoter,
    SilentNode,
    SlowProposer,
    TailWithholder,
    WithholdingProposer,
)
from ..consensus.deployment import Deployment
from ..consensus.params import ProtocolParams
from ..errors import ConfigError, ConsensusError
from ..net.faults import (
    ChurnSchedule,
    CompositeFault,
    LinkFault,
    LossyLink,
    Partition,
    PartitionAdversary,
)
from ..obs.tracer import ensure_tracer
from ..smr.mempool import SyntheticWorkload
from ..types import NodeId, max_faults
from .scenario import Scenario

_BYZANTINE_FACTORIES = {
    "silent": SilentNode,
    "lazy-voter": LazyVoter,
    "equivocator": EquivocatingProposer,
    "withholder": WithholdingProposer,
    "slow-proposer": SlowProposer,
    "tail-withholder": TailWithholder,
}


@dataclass(frozen=True)
class InvariantCheck:
    """One verified property of a finished chaos run."""

    name: str
    ok: bool
    detail: str


@dataclass(frozen=True)
class ChaosResult:
    """Outcome of one scenario run."""

    scenario: Scenario
    checks: tuple[InvariantCheck, ...]
    #: Headline numbers for reports (commits, rounds, drops, retransmissions…).
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> tuple[InvariantCheck, ...]:
        return tuple(check for check in self.checks if not check.ok)


def build_faults(scenario: Scenario) -> LinkFault | None:
    """The scenario's composed link-fault model (None = perfect links)."""
    models: list[LinkFault] = []
    if scenario.drop_prob > 0 or scenario.duplicate_prob > 0:
        models.append(
            LossyLink(
                scenario.drop_prob,
                scenario.duplicate_prob,
                seed=scenario.seed,
            )
        )
    if scenario.partitions:
        models.append(
            PartitionAdversary(
                [
                    Partition(
                        p.start, p.end, tuple(frozenset(g) for g in p.groups)
                    )
                    for p in scenario.partitions
                ]
            )
        )
    if not models:
        return None
    if len(models) == 1:
        return models[0]
    return CompositeFault(models)


def build_deployment(
    scenario: Scenario, tracer=None
) -> tuple[Deployment, SyntheticWorkload]:
    """Instantiate (but do not start) the scenario's deployment."""
    f = max_faults(scenario.n)
    budget = len(scenario.byzantine) + len(scenario.permanently_down)
    if budget > f:
        raise ConfigError(
            f"scenario {scenario.name!r}: {budget} permanent faults exceed "
            f"f={f} for n={scenario.n}"
        )
    byzantine: dict[NodeId, ByzantineBehavior] = {
        node: _BYZANTINE_FACTORIES[kind]() for node, kind in scenario.byzantine
    }
    churn = (
        ChurnSchedule.outages(
            [(c.node, c.down_at, c.up_at) for c in scenario.crashes]
        )
        if scenario.crashes
        else None
    )
    workload = SyntheticWorkload(txns_per_proposal=scenario.txns_per_proposal)
    deployment = Deployment(
        ClanConfig.baseline(scenario.n),
        params=ProtocolParams(
            rbc_mode=scenario.rbc_mode,
            leader_timeout=scenario.leader_timeout,
            verify_signatures=False,
            edge_mode=scenario.edge_mode,
            edge_fanout=scenario.edge_fanout,
        ),
        make_block=workload.make_block,
        seed=scenario.seed,
        byzantine=byzantine,
        faults=build_faults(scenario),
        reliable=scenario.use_reliable,
        churn=churn,
        tracer=tracer,
    )
    return deployment, workload


def run_scenario(
    scenario: Scenario, tracer=None, monitors: bool = False
) -> ChaosResult:
    """Run one scenario and evaluate its invariants.

    With ``monitors=True`` the forensics monitor suite observes the run
    *online* (stall watchdog, commit-prefix safety, equivocation evidence);
    any ``safety`` anomaly fails an extra invariant check.  Attaching the
    suite never schedules simulator events, so the run itself — and every
    stat below — is bit-identical either way.
    """
    tracer = ensure_tracer(tracer)
    deployment, _workload = build_deployment(scenario, tracer=tracer)
    suite = None
    if monitors:
        from ..forensics.monitors import MonitorSuite

        suite = MonitorSuite(tracer=tracer).attach(deployment)
    deployment.start()
    deployment.run(until=scenario.duration)
    if suite is not None:
        suite.finish()

    byzantine_ids = {node for node, _ in scenario.byzantine}
    down = scenario.permanently_down
    honest = [
        i for i in range(scenario.n) if i not in byzantine_ids and i not in down
    ]
    recovered = [n for n in scenario.recovered_nodes if n in honest]
    checks: list[InvariantCheck] = []

    # -- safety: prefix-consistent, byte-identical committed prefixes -------
    try:
        logs = {i: deployment.nodes[i].ordered_keys() for i in honest}
        for (id_a, log_a), (id_b, log_b) in zip(
            list(logs.items()), list(logs.items())[1:]
        ):
            shared = min(len(log_a), len(log_b))
            if log_a[:shared] != log_b[:shared]:
                raise ConsensusError(
                    f"nodes {id_a}/{id_b} diverge within the first {shared} entries"
                )
        shared_prefix = min(len(log) for log in logs.values())
        checks.append(
            InvariantCheck(
                "safety",
                True,
                f"{len(honest)} honest logs prefix-consistent; "
                f"common prefix {shared_prefix} vertices",
            )
        )
    except ConsensusError as exc:
        shared_prefix = 0
        checks.append(InvariantCheck("safety", False, str(exc)))

    # -- liveness: progress, and progress after the last fault settles ------
    min_ordered = min(len(deployment.nodes[i].ordered_log) for i in honest)
    checks.append(
        InvariantCheck(
            "liveness.commits",
            min_ordered >= scenario.min_commits,
            f"min ordered {min_ordered} (required {scenario.min_commits})",
        )
    )
    settle = scenario.settle_time
    stalled = []
    for i in honest:
        log = deployment.nodes[i].ordered_log
        if not log or log[-1][1] <= settle:
            stalled.append(i)
    checks.append(
        InvariantCheck(
            "liveness.post-settle",
            not stalled,
            (
                f"all honest nodes committed after settle t={settle:g}"
                if not stalled
                else f"nodes {stalled} made no commits after settle t={settle:g}"
            ),
        )
    )

    # -- catch-up: recovered nodes rejoin the frontier ----------------------
    if recovered:
        frontier = max(deployment.nodes[i].round for i in honest)
        laggards = [
            (i, deployment.nodes[i].round)
            for i in recovered
            if frontier - deployment.nodes[i].round > scenario.max_round_lag
        ]
        pulls = {i: deployment.nodes[i].sync.vertices_pulled for i in recovered}
        checks.append(
            InvariantCheck(
                "catchup.rejoined",
                not laggards,
                (
                    f"recovered nodes within {scenario.max_round_lag} rounds of "
                    f"frontier {frontier}; vertices pulled {pulls}"
                    if not laggards
                    else f"nodes {laggards} trail frontier {frontier} by more "
                    f"than {scenario.max_round_lag} rounds"
                ),
            )
        )

    # -- RBC-mode invariants: fast-path crossover / certified prefixes ------
    mode_stats: dict[str, Any] = {}
    if scenario.rbc_mode == "optimistic":
        fast = sum(deployment.nodes[i].rbc.fast_deliveries for i in honest)
        fallback = sum(deployment.nodes[i].rbc.fallback_deliveries for i in honest)
        reasons: dict[str, int] = {}
        for i in honest:
            for reason, count in deployment.nodes[i].rbc.fallbacks.items():
                reasons[reason] = reasons.get(reason, 0) + count
        mode_stats = {
            "fast_deliveries": fast,
            "fallback_deliveries": fallback,
            "fallback_reasons": reasons,
        }
        if scenario.extra.get("expect_fast") or scenario.extra.get("expect_fallback"):
            ok = (not scenario.extra.get("expect_fast") or fast > 0) and (
                not scenario.extra.get("expect_fallback") or fallback > 0
            )
            checks.append(
                InvariantCheck(
                    "rbc.crossover",
                    ok,
                    f"fast {fast}, fallback {fallback} (reasons {reasons or 'none'})",
                )
            )
    elif scenario.rbc_mode == "prefix":
        commits = sum(deployment.nodes[i].prefix_commits for i in honest)
        truncated = sum(deployment.nodes[i].prefix_truncated for i in honest)
        committed = sum(deployment.nodes[i].prefix_chunks_committed for i in honest)
        dropped = sum(deployment.nodes[i].prefix_chunks_dropped for i in honest)
        mode_stats = {
            "prefix_commits": commits,
            "prefix_truncated": truncated,
            "prefix_chunks_committed": committed,
            "prefix_chunks_dropped": dropped,
        }
        if scenario.extra.get("expect_prefix"):
            # The point of the scenario: non-empty prefixes commit even
            # though the adversary forces truncation somewhere.
            checks.append(
                InvariantCheck(
                    "prefix.commits",
                    commits > 0 and truncated > 0,
                    f"{commits} prefix commits, {truncated} truncated, "
                    f"{committed} chunks committed / {dropped} dropped",
                )
            )

    # -- online monitors: zero safety anomalies, ever -----------------------
    if suite is not None:
        safety = suite.safety_anomalies
        counts = suite.counts()
        checks.append(
            InvariantCheck(
                "monitors.safety",
                not safety,
                (
                    f"0 safety anomalies online (others: {counts or 'none'})"
                    if not safety
                    else f"{len(safety)} safety anomalies: "
                    + ", ".join(sorted({a.name for a in safety}))
                ),
            )
        )

    base = deployment.base_network
    stats: dict[str, Any] = {
        "min_ordered": min_ordered,
        "common_prefix": shared_prefix,
        "max_round": max(deployment.nodes[i].round for i in honest),
        "messages": base.stats.total_messages,
        "dropped": base.stats.messages_dropped,
        "duplicated": base.stats.messages_duplicated,
        "settle_time": settle,
    }
    stats.update(mode_stats)
    if scenario.use_reliable:
        stats["retransmissions"] = deployment.network.retransmissions
        stats["duplicates_suppressed"] = deployment.network.duplicates_suppressed
    if recovered:
        stats["vertices_pulled"] = {
            i: deployment.nodes[i].sync.vertices_pulled for i in recovered
        }
        stats["syncs_started"] = {
            i: deployment.nodes[i].sync.syncs_started for i in recovered
        }
    if suite is not None:
        stats["anomalies"] = suite.counts()
        stats["flight_bundles"] = len(suite.recorder.bundles)
    if tracer.enabled:
        tracer.counter(
            "chaos.result",
            scenario=scenario.name,
            ok=all(c.ok for c in checks),
            **{k: v for k, v in stats.items() if isinstance(v, (int, float))},
        )
    return ChaosResult(scenario=scenario, checks=tuple(checks), stats=stats)


def run_scenarios(scenarios, tracer=None, monitors: bool = False) -> list[ChaosResult]:
    return [run_scenario(s, tracer=tracer, monitors=monitors) for s in scenarios]
