"""Declarative chaos scenarios.

A :class:`Scenario` is a plain-data fault script: link loss/duplication
rates, scripted partitions, crash/recover churn, and a Byzantine mix, plus
the invariant bounds the run must satisfy.  Scenarios round-trip through JSON
(:meth:`Scenario.to_dict` / :meth:`Scenario.from_dict`) so fault scripts can
live in files and CI manifests, and every random choice hangs off one master
seed, so a scenario is a *reproducible* experiment, not a fuzz run.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Iterable

from ..errors import ConfigError
from ..types import NodeId

#: Byzantine behaviours a scenario may name (kept in lockstep with
#: :mod:`repro.consensus.byzantine`; resolved lazily by the runner).
BYZANTINE_KINDS = (
    "silent",
    "lazy-voter",
    "equivocator",
    "withholder",
    "slow-proposer",
    "tail-withholder",
)

#: RBC modes a scenario may select (kept in lockstep with
#: :class:`repro.consensus.params.ProtocolParams`).
RBC_MODES = ("two-round", "bracha", "optimistic", "prefix")

#: Edge policies a scenario may select (kept in lockstep with
#: :class:`repro.consensus.params.ProtocolParams`).
EDGE_MODES = ("full", "sparse")


@dataclass(frozen=True)
class PartitionSpec:
    """A scripted split: ``groups`` are disjoint; omitted nodes form the
    implicit remainder group (see :class:`repro.net.faults.Partition`)."""

    start: float
    end: float
    groups: tuple[tuple[NodeId, ...], ...]

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigError(f"partition window [{self.start}, {self.end}) is empty")
        if not self.groups:
            raise ConfigError("partition needs at least one explicit group")


@dataclass(frozen=True)
class CrashSpec:
    """One node's outage; ``up_at=None`` means it never recovers."""

    node: NodeId
    down_at: float
    up_at: float | None = None

    def __post_init__(self) -> None:
        if self.down_at < 0:
            raise ConfigError("crash time cannot be negative")
        if self.up_at is not None and self.up_at <= self.down_at:
            raise ConfigError(
                f"node {self.node} recovery at {self.up_at} precedes crash"
            )


@dataclass(frozen=True)
class Scenario:
    """One reproducible fault-injection experiment.

    Invariants asserted by the runner (see :mod:`repro.chaos.runner`):

    * **Safety** — all honest nodes' ordered logs are prefix-consistent, and
      at least two honest logs share a byte-identical non-empty prefix.
    * **Liveness** — every live honest node commits new vertices *after* the
      settle time (last heal/recovery, i.e. the scenario's GST), and the run
      reaches ``min_commits`` total.
    * **Catch-up** — every recovered node ends within ``max_round_lag``
      rounds of the most advanced honest node, with the same committed
      prefix.
    """

    name: str
    description: str = ""
    # -- deployment shape ---------------------------------------------------
    n: int = 4
    duration: float = 30.0
    seed: int = 0
    leader_timeout: float = 1.0
    txns_per_proposal: int = 64
    #: RBC variant the deployment runs (from :data:`RBC_MODES`) — chaos
    #: scenarios are how the optimistic fast-path crossover and the
    #: certified-prefix commit rule are exercised under faults.
    rbc_mode: str = "two-round"
    #: Strong-edge policy (from :data:`EDGE_MODES`) — the sparse-edge
    #: scenarios gate the compensating commit rule under faults.
    edge_mode: str = "full"
    #: Sparse fan-out (0 = auto ~log2 n).
    edge_fanout: int = 0
    # -- faults -------------------------------------------------------------
    drop_prob: float = 0.0
    duplicate_prob: float = 0.0
    partitions: tuple[PartitionSpec, ...] = ()
    crashes: tuple[CrashSpec, ...] = ()
    #: ``(node, kind)`` pairs; kind from :data:`BYZANTINE_KINDS`.
    byzantine: tuple[tuple[NodeId, str], ...] = ()
    #: Run over the reliable channel.  Defaults on whenever links are lossy —
    #: the protocol assumes reliable links, so raw loss without it is a
    #: *negative* experiment, not a robustness one.
    reliable: bool | None = None
    # -- invariant bounds ---------------------------------------------------
    min_commits: int = 1
    #: Liveness margin: commits must appear within the window
    #: ``(settle_time, duration]``; the scenario must leave this much room.
    settle_margin: float = 5.0
    #: Max rounds a recovered node may trail the frontier at the end.
    max_round_lag: int = 10
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n < 4:
            raise ConfigError("chaos scenarios need n >= 4 (f >= 1)")
        if self.duration <= 0:
            raise ConfigError("duration must be positive")
        if self.rbc_mode not in RBC_MODES:
            raise ConfigError(
                f"unknown rbc_mode {self.rbc_mode!r}; choose from {RBC_MODES}"
            )
        if self.edge_mode not in EDGE_MODES:
            raise ConfigError(
                f"unknown edge_mode {self.edge_mode!r}; choose from {EDGE_MODES}"
            )
        if self.edge_fanout < 0:
            raise ConfigError("edge_fanout cannot be negative")
        for node, kind in self.byzantine:
            if kind not in BYZANTINE_KINDS:
                raise ConfigError(
                    f"unknown byzantine kind {kind!r} (node {node}); "
                    f"choose from {BYZANTINE_KINDS}"
                )
            if not 0 <= node < self.n:
                raise ConfigError(f"byzantine node {node} out of range")
        for spec in self.crashes:
            if not 0 <= spec.node < self.n:
                raise ConfigError(f"crashed node {spec.node} out of range")
        if self.settle_time + self.settle_margin > self.duration:
            raise ConfigError(
                f"scenario {self.name!r}: duration {self.duration} leaves less "
                f"than settle_margin={self.settle_margin}s after the last "
                f"fault settles at {self.settle_time}"
            )

    # -- derived ------------------------------------------------------------

    @property
    def use_reliable(self) -> bool:
        if self.reliable is not None:
            return self.reliable
        return self.drop_prob > 0 or self.duplicate_prob > 0

    @property
    def settle_time(self) -> float:
        """The scenario's GST: when the last partition heals / node recovers.

        Permanent crashes don't push it out — a node that never returns is a
        standard fail-stop fault the protocol tolerates within ``f``."""
        settle = 0.0
        for split in self.partitions:
            settle = max(settle, split.end)
        for crash in self.crashes:
            settle = max(settle, crash.up_at if crash.up_at is not None else crash.down_at)
        return settle

    @property
    def recovered_nodes(self) -> tuple[NodeId, ...]:
        return tuple(c.node for c in self.crashes if c.up_at is not None)

    @property
    def permanently_down(self) -> frozenset[NodeId]:
        up: dict[NodeId, bool] = {}
        for crash in sorted(self.crashes, key=lambda c: c.down_at):
            up[crash.node] = crash.up_at is not None
        return frozenset(node for node, recovered in up.items() if not recovered)

    # -- (de)serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["partitions"] = [
            {"start": p.start, "end": p.end, "groups": [list(g) for g in p.groups]}
            for p in self.partitions
        ]
        data["crashes"] = [
            {"node": c.node, "down_at": c.down_at, "up_at": c.up_at}
            for c in self.crashes
        ]
        data["byzantine"] = [[node, kind] for node, kind in self.byzantine]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Scenario":
        payload = dict(data)
        payload["partitions"] = tuple(
            PartitionSpec(
                start=p["start"],
                end=p["end"],
                groups=tuple(tuple(g) for g in p["groups"]),
            )
            for p in payload.get("partitions", ())
        )
        payload["crashes"] = tuple(
            CrashSpec(node=c["node"], down_at=c["down_at"], up_at=c.get("up_at"))
            for c in payload.get("crashes", ())
        )
        payload["byzantine"] = tuple(
            (int(node), str(kind)) for node, kind in payload.get("byzantine", ())
        )
        unknown = set(payload) - {f.name for f in cls.__dataclass_fields__.values()}
        if unknown:
            raise ConfigError(f"unknown scenario fields: {sorted(unknown)}")
        return cls(**payload)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))


def load_scenarios(text: str) -> list[Scenario]:
    """Parse a JSON file holding one scenario object or a list of them."""
    data = json.loads(text)
    if isinstance(data, dict):
        data = [data]
    if not isinstance(data, list):
        raise ConfigError("scenario file must hold an object or a list")
    return [Scenario.from_dict(entry) for entry in data]


def dump_scenarios(scenarios: Iterable[Scenario]) -> str:
    return json.dumps([s.to_dict() for s in scenarios], indent=2, sort_keys=True)
