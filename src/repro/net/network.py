"""The simulated network: NIC serialization + propagation + CPU queueing.

Delivery time of a message from ``src`` to ``dst``::

    start    = max(now, nic_free_at[src])          # outbound FIFO queue
    tx       = wire_size / bandwidth               # serialization
    arrive   = start + tx + latency(src, dst) + adversarial_extra
    handled  = max(arrive, cpu_free_at[dst]) + cpu_cost   # receive queue

The outbound NIC queue is the effect the paper's clan technique exploits: a
Sailfish proposer multicasting an ℓ-byte block to ``n-1`` peers holds its NIC
for ``(n-1)·ℓ/B`` seconds, whereas a clan proposer holds it for only
``(n_c-1)·ℓ/B``.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Callable, Iterable

from ..analysis import sanitizers as _sanitizers
from ..errors import NetworkError
from ..obs.tracer import NULL_TRACER
from ..sim.scheduler import Simulator
from ..types import NodeId
from .adversary import DelayAdversary
from .cpu import CpuModel
from .faults import LinkFault
from .latency import LatencyModel, UniformLatencyModel
from .message import Message, MessageArena

Handler = Callable[[NodeId, Message], None]


class NetworkStats:
    """Aggregate traffic counters, per node and per message kind."""

    __slots__ = (
        "bytes_sent",
        "bytes_received",
        "messages_sent",
        "messages_dropped",
        "messages_duplicated",
        "bytes_by_kind",
        "messages_by_kind",
    )

    def __init__(self, n: int) -> None:
        self.bytes_sent = [0] * n
        self.bytes_received = [0] * n
        self.messages_sent = [0] * n
        #: Copies discarded by the link fault model (wire loss, partitions).
        self.messages_dropped = 0
        #: Extra copies injected by the link fault model.
        self.messages_duplicated = 0
        self.bytes_by_kind: dict[str, int] = defaultdict(int)
        self.messages_by_kind: dict[str, int] = defaultdict(int)

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_sent)

    @property
    def total_messages(self) -> int:
        return sum(self.messages_sent)


class Network:
    """Point-to-point simulated network connecting ``n`` registered nodes."""

    def __init__(
        self,
        sim: Simulator,
        n: int,
        latency: LatencyModel | None = None,
        bandwidth_bps: float | None = None,
        adversary: DelayAdversary | None = None,
        cpu: CpuModel | None = None,
        faults: LinkFault | None = None,
        track_kinds: bool = False,
        tracer=None,
    ) -> None:
        if n < 1:
            raise NetworkError(f"network needs at least one node, got n={n}")
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise NetworkError("bandwidth must be positive")
        self.sim = sim
        self.n = n
        self.latency = latency if latency is not None else UniformLatencyModel(0.05)
        # Jitter-free latency models expose a constant per-link delay table;
        # precomputing it removes a method call per (message, destination).
        self._latency_table = self.latency.constant_delays(n)
        if self._latency_table is not None and any(
            d < 0 for row in self._latency_table for d in row
        ):
            raise NetworkError("latency model produced a negative constant delay")
        # Jittered built-in models expose their exact delay expression so the
        # transmit loop can inline it (one RNG draw per delivery, identical
        # float math — see LatencyModel.jitter_params).
        self._jitter_params = (
            None if self._latency_table is not None else self.latency.jitter_params(n)
        )
        # Convert bits/s to bytes/s once; None means infinite bandwidth.
        self._bytes_per_sec = bandwidth_bps / 8.0 if bandwidth_bps else None
        self.adversary = adversary if adversary is not None else DelayAdversary()
        # The base DelayAdversary never adds delay: skip the call entirely.
        self._null_adversary = type(self.adversary) is DelayAdversary
        self.cpu = cpu
        #: Link fault model (loss/duplication/partitions); None = perfect wire.
        self.faults = faults
        self.stats = NetworkStats(n)
        self._track_kinds = track_kinds
        self._tracer = tracer if tracer is not None else NULL_TRACER
        # At full sampling every message takes the traced path (the pre-
        # sampling behaviour).  Below 1.0 only messages stamped with a
        # trace_ctx do; the rest keep the untraced fast path, which is what
        # makes 1/k head sampling affordable at benchmark event rates.
        self._trace_all = self._tracer.enabled and self._tracer.sample >= 1.0
        self._handlers: list[Handler | None] = [None] * n
        self._nic_free_at = [0.0] * n
        self._cpu_free_at = [0.0] * n
        self._crashed = [False] * n
        #: Per-node (on_crash, on_recover) callback pairs.
        self._lifecycle: dict[NodeId, list[tuple]] = defaultdict(list)
        # Freeze-after-send sanitizer (REPRO_SANITIZE=1): digests messages at
        # send, re-checks at delivery.  None (the default) costs one None
        # check per transmit/handle.
        self._freeze = _sanitizers.FreezeGuard() if _sanitizers.enabled() else None
        #: Per-node {message class: handler} tables (see :meth:`set_dispatch`).
        self._dispatch: list[dict | None] = [None] * n
        # Deliveries can skip the CPU-queue/tracing/sanitizer layers entirely
        # when none of them is configured: _deliver_fast fuses _deliver and
        # _handle into one callback frame.
        self._plain = cpu is None and self._freeze is None
        # Delivery events can be appended straight into the simulator's
        # calendar buckets — skipping the `post` call per delivery — when the
        # arrival time is provably never in the past (built-in non-negative
        # latency models, no adversarial extra delay) and the tie-order
        # auditor doesn't need to observe insertions.
        self._inline = (
            self._null_adversary
            and sim.tie_audit is None
            and (self._latency_table is not None or self._jitter_params is not None)
        )
        # Message arena: only when the arrival-time upper bound per transmit
        # is computable (built-in latency models, no adversarial delay) and
        # nothing observes message identity across deliveries (no freeze
        # sanitizer, no CPU-queue requeue).  `_retire` is a min-heap of
        # (retire_at, seq, msg): once sim time passes retire_at, every copy
        # of msg has been delivered and the object returns to the pool.
        self.arena: MessageArena | None = None
        self._retire: list | None = None
        self._retire_seq = 0
        self._max_delay: list[float] | None = None
        if self._plain and self._inline:
            if self._latency_table is not None:
                self._max_delay = [max(row) + 1e-9 for row in self._latency_table]
            else:
                jmode, jdata, jit, _ = self._jitter_params
                if jmode == "mul":
                    self._max_delay = [max(row) * (1.0 + jit) + 1e-9 for row in jdata]
                else:
                    self._max_delay = [jdata + jit + 1e-9] * n
            self.arena = MessageArena()
            self._retire = []

    @property
    def freeze_guard(self):
        """The ``REPRO_SANITIZE=1`` freeze-after-send guard (None when off)."""
        return self._freeze

    def register(self, node_id: NodeId, handler: Handler) -> None:
        """Register the message handler for ``node_id``."""
        if not 0 <= node_id < self.n:
            raise NetworkError(f"node id {node_id} out of range (n={self.n})")
        self._handlers[node_id] = handler
        # A new handler invalidates any fast-dispatch table installed for the
        # old one; set_dispatch must be called after register.
        self._dispatch[node_id] = None

    def set_dispatch(self, node_id: NodeId, table: dict[type, Handler]) -> None:
        """Install a per-message-class fast dispatch table for ``node_id``.

        Optional: nodes that know their full message vocabulary map each
        concrete message class to its handler so the hot delivery path jumps
        straight there, skipping the catch-all handler's isinstance chain.
        Keys are exact classes (no subclass matching); messages of any other
        type fall back to the handler from :meth:`register`.  Call after
        :meth:`register` — re-registering clears the table.
        """
        if not 0 <= node_id < self.n:
            raise NetworkError(f"node id {node_id} out of range (n={self.n})")
        self._dispatch[node_id] = dict(table)

    def on_lifecycle(
        self,
        node_id: NodeId,
        on_crash: Callable[[], None] | None = None,
        on_recover: Callable[[], None] | None = None,
    ) -> None:
        """Register callbacks fired when ``node_id`` crashes / recovers.

        Crash semantics are fail-stop with *persisted* state: the process
        stops (its timers must stop firing — that is what ``on_crash`` hooks
        implement) but durable state (the DAG store) survives to ``recover``.
        """
        if not 0 <= node_id < self.n:
            raise NetworkError(f"node id {node_id} out of range (n={self.n})")
        self._lifecycle[node_id].append((on_crash, on_recover))

    def crash(self, node_id: NodeId) -> None:
        """Crash a node: it stops sending and receiving from now on.

        Idempotent; fires registered ``on_crash`` callbacks exactly once per
        transition so node-local timers are suppressed (a crashed node must
        not keep proposing or voting from beyond the grave).
        """
        if self._crashed[node_id]:
            return
        self._crashed[node_id] = True
        for on_crash, _ in self._lifecycle.get(node_id, ()):
            if on_crash is not None:
                on_crash()

    def recover(self, node_id: NodeId) -> None:
        """Undo :meth:`crash`; fires ``on_recover`` callbacks (catch-up)."""
        if not self._crashed[node_id]:
            return
        self._crashed[node_id] = False
        for _, on_recover in self._lifecycle.get(node_id, ()):
            if on_recover is not None:
                on_recover()

    def is_crashed(self, node_id: NodeId) -> bool:
        return self._crashed[node_id]

    @property
    def track_kinds(self) -> bool:
        """Whether per-message-kind stats are being collected."""
        return self._track_kinds

    @property
    def tracer(self):
        return self._tracer

    def send(self, src: NodeId, dst: NodeId, msg: Message) -> None:
        """Send one message; delivery is scheduled on the simulator."""
        self._transmit(src, (dst,), msg)

    def multicast(self, src: NodeId, dsts: Iterable[NodeId], msg: Message) -> None:
        """Send ``msg`` to every destination; each copy occupies the NIC.

        Matches the paper's practical-RBC assumption: the sender multicasts a
        full copy to each recipient (no erasure coding), so NIC time scales
        with the recipient count.
        """
        self._transmit(src, tuple(dsts), msg)

    def broadcast(self, src: NodeId, msg: Message) -> None:
        """Multicast to all nodes, including ``src`` itself (self-delivery)."""
        self._transmit(src, range(self.n), msg)

    def _transmit(self, src: NodeId, dsts: Iterable[NodeId], msg: Message) -> None:
        # The benchmark-critical loop of the whole simulator: every
        # broadcast/multicast lands here, and every iteration schedules one
        # delivery event.  Three layers are flattened away when possible:
        # per-destination stats increments are batched into one update at the
        # end, the latency model's delay expression is inlined (identical
        # float math and RNG draw order — see LatencyModel.jitter_params),
        # and delivery events are appended directly into the simulator's
        # calendar buckets instead of going through `sim.post`.
        if self._crashed[src]:
            return
        if self._freeze is not None:
            self._freeze.on_send(msg)
        if self._tracer.enabled and (
            self._trace_all or getattr(msg, "trace_ctx", None) is not None
        ):
            # Arrival times are identical on both paths (same inlined delay
            # expression, same RNG draw order, same bucket structure), so
            # routing per-message by sampling decision cannot perturb the
            # run — RunMetrics stays bit-identical at any sample rate.
            self._transmit_traced(src, dsts, msg)
            return
        sim = self.sim
        now = sim.now
        retire = self._retire
        if retire and retire[0][0] < now:
            # Every copy of these messages has an arrival bound strictly in
            # the past: all deliveries ran, the objects are free to reuse.
            release = self.arena.release
            pop = heapq.heappop
            while retire and retire[0][0] < now:
                release(pop(retire)[2])
        size = msg.wire_size_cached()
        stats = self.stats
        per_byte = self._bytes_per_sec
        faults = self.faults
        n = self.n
        crow = self._latency_table[src] if self._latency_table is not None else None
        jrow = jadd = None
        if self._jitter_params is not None:
            jmode, jdata, jit, rand = self._jitter_params
            if jmode == "mul":
                jrow = jdata[src]
            else:
                jadd = jdata
        delay = self.latency.delay
        deliver = self._deliver_fast if self._plain else self._deliver
        inline = self._inline
        if inline:
            buckets = sim._buckets
            times = sim._times
            push = heapq.heappush
        else:
            post = sim.post
            extra_delay = None if self._null_adversary else self.adversary.extra_delay
        nic_free = self._nic_free_at[src]
        clock = now if now > nic_free else nic_free
        count = 0
        for dst in dsts:
            if dst == src:
                # Loopback: no NIC or propagation cost (and no wire faults),
                # but still event-driven so ordering semantics match remote
                # deliveries.
                count += 1
                payload = (src, dst, msg, size)
                if inline:
                    bucket = buckets.get(now)
                    if bucket is None:
                        buckets[now] = [(deliver, payload)]
                        push(times, now)
                    else:
                        bucket.append((deliver, payload))
                else:
                    post(now, deliver, payload)
                continue
            if dst < 0 or dst >= n:
                raise NetworkError(f"destination {dst} out of range (n={n})")
            count += 1
            if per_byte is not None:
                # The NIC serializes the copy whether or not the wire then
                # loses it — loss happens in the network, not at the sender.
                clock += size / per_byte
            if faults is not None:
                copies = faults.copies(src, dst, msg, now)
                if copies == 0:
                    stats.messages_dropped += 1
                    continue
                if copies > 1:
                    stats.messages_duplicated += copies - 1
                for _ in range(copies):
                    if crow is not None:
                        arrive = clock + crow[dst]
                    elif jrow is not None:
                        arrive = clock + jrow[dst] * (1.0 + rand() * jit)
                    elif jadd is not None:
                        arrive = clock + jadd + rand() * jit
                    else:
                        arrive = clock + delay(src, dst)
                    payload = (src, dst, msg, size)
                    if inline:
                        bucket = buckets.get(arrive)
                        if bucket is None:
                            buckets[arrive] = [(deliver, payload)]
                            push(times, arrive)
                        else:
                            bucket.append((deliver, payload))
                    else:
                        if extra_delay is not None:
                            arrive += extra_delay(src, dst, msg, now)
                        post(arrive, deliver, payload)
                continue
            # Fault-free single copy: the common case, kept branch-light.
            if crow is not None:
                arrive = clock + crow[dst]
            elif jrow is not None:
                arrive = clock + jrow[dst] * (1.0 + rand() * jit)
            elif jadd is not None:
                arrive = clock + jadd + rand() * jit
            else:
                arrive = clock + delay(src, dst)
            payload = (src, dst, msg, size)
            if inline:
                bucket = buckets.get(arrive)
                if bucket is None:
                    buckets[arrive] = [(deliver, payload)]
                    push(times, arrive)
                else:
                    bucket.append((deliver, payload))
            else:
                if extra_delay is not None:
                    arrive += extra_delay(src, dst, msg, now)
                post(arrive, deliver, payload)
        if count:
            stats.bytes_sent[src] += size * count
            stats.messages_sent[src] += count
            if self._track_kinds:
                kind = msg.kind()
                stats.bytes_by_kind[kind] += size * count
                stats.messages_by_kind[kind] += count
            if retire is not None and msg.__class__ in self.arena.pools:
                # Last copy leaves the NIC at `clock`; the slowest link adds
                # at most _max_delay[src].  Past that instant the object is
                # unreachable from the event queue.
                self._retire_seq += 1
                heapq.heappush(
                    retire, (clock + self._max_delay[src], self._retire_seq, msg)
                )
        self._nic_free_at[src] = clock

    def _transmit_traced(self, src: NodeId, dsts: Iterable[NodeId], msg: Message) -> None:
        """Tracing twin of :meth:`_transmit`.

        Identical delivery semantics, but each hop carries a metadata tuple
        ``(sent_at, nic_wait, tx, prop)`` so :meth:`_deliver` can emit the
        full per-hop latency decomposition of the module docstring:
        NIC-queue wait → serialization → propagation → CPU-queue wait → CPU.
        """
        sim = self.sim
        now = sim.now
        size = msg.wire_size_cached()
        stats = self.stats
        if self._track_kinds:
            kind = msg.kind()
        per_byte = self._bytes_per_sec
        faults = self.faults
        nic_free = self._nic_free_at[src]
        clock = now if now > nic_free else nic_free
        for dst in dsts:
            if not 0 <= dst < self.n:
                raise NetworkError(f"destination {dst} out of range (n={self.n})")
            stats.bytes_sent[src] += size
            stats.messages_sent[src] += 1
            if self._track_kinds:
                stats.bytes_by_kind[kind] += size
                stats.messages_by_kind[kind] += 1
            if dst == src:
                sim.post(now, self._deliver, (src, dst, msg, size, (now, 0.0, 0.0, 0.0)))
                continue
            nic_wait = clock - now
            tx = 0.0
            if per_byte is not None:
                tx = size / per_byte
                clock += tx
            copies = 1 if faults is None else faults.copies(src, dst, msg, now)
            if copies == 0:
                stats.messages_dropped += 1
                self._tracer.counter(  # repro: allow[OBS001] — traced dispatch only
                    "net.drop", node=src, dst=dst, kind=msg.kind(), size=size,
                )
                continue
            if copies > 1:
                stats.messages_duplicated += copies - 1
            for _ in range(copies):
                prop = self.latency.delay(src, dst)
                prop += self.adversary.extra_delay(src, dst, msg, now)
                arrive = clock + prop
                sim.post(
                    arrive, self._deliver, (src, dst, msg, size, (now, nic_wait, tx, prop))
                )
        self._nic_free_at[src] = clock

    def _deliver_fast(self, src: NodeId, dst: NodeId, msg: Message, size: int) -> None:
        """Fused :meth:`_deliver` + :meth:`_handle` for the plain path.

        Used when no CPU model, no freeze sanitizer, and no tracer can
        intervene between arrival and handling — one callback frame per
        delivery instead of two.  Nodes that installed a dispatch table
        (:meth:`set_dispatch`) additionally skip their catch-all handler's
        isinstance chain.  Semantics match the slow pair exactly: crashed
        destinations drop silently, and a node with no handler receives
        nothing (no stats recorded).
        """
        if self._crashed[dst]:
            return
        table = self._dispatch[dst]
        if table is not None:
            fn = table.get(msg.__class__)
            if fn is not None:
                self.stats.bytes_received[dst] += size
                fn(src, msg)
                return
        handler = self._handlers[dst]
        if handler is None:
            return
        self.stats.bytes_received[dst] += size
        handler(src, msg)

    def _deliver(
        self, src: NodeId, dst: NodeId, msg: Message, size: int, meta: tuple | None = None
    ) -> None:
        if self._crashed[dst]:
            return
        handler = self._handlers[dst]
        if handler is None:
            return
        cpu_wait = 0.0
        cost = 0.0
        done = None
        if self.cpu is not None:
            cost = self.cpu.cost(msg)
            if cost > 0.0:
                now = self.sim.now
                start = self._cpu_free_at[dst]
                if start < now:
                    start = now
                cpu_wait = start - now
                done = start + cost
                self._cpu_free_at[dst] = done
        if meta is not None and self._tracer.enabled:
            sent_at, nic_wait, tx, prop = meta
            ctx = getattr(msg, "trace_ctx", None)
            if ctx is not None:
                self._tracer.ctx_span(
                    "net.hop",
                    start=sent_at,
                    ctx=ctx,
                    end=done if done is not None else self.sim.now,
                    node=dst,
                    src=src,
                    kind=msg.kind(),
                    size=size,
                    nic_wait=nic_wait,
                    tx=tx,
                    prop=prop,
                    cpu_wait=cpu_wait,
                    cpu=cost,
                )
            else:
                self._tracer.span(
                    "net.hop",
                    start=sent_at,
                    end=done if done is not None else self.sim.now,
                    node=dst,
                    src=src,
                    kind=msg.kind(),
                    size=size,
                    nic_wait=nic_wait,
                    tx=tx,
                    prop=prop,
                    cpu_wait=cpu_wait,
                    cpu=cost,
                )
        if done is not None:
            self.sim.post(done, self._handle, (src, dst, msg, size))
            return
        self._handle(src, dst, msg, size)

    def _handle(self, src: NodeId, dst: NodeId, msg: Message, size: int) -> None:
        if self._crashed[dst]:
            return
        if self._freeze is not None:
            self._freeze.on_deliver(msg)
        self.stats.bytes_received[dst] += size
        handler = self._handlers[dst]
        if handler is not None:
            handler(src, msg)
