"""Base message type for the simulated network.

Concrete protocol messages subclass :class:`Message` and implement
:meth:`Message.wire_size` so the NIC serializer can charge transmission time.
"""

from __future__ import annotations

from ..net import sizes


class Message:
    """Base class for all simulated network messages.

    Subclasses should set ``__slots__`` and override :meth:`wire_size`.
    """

    __slots__ = ()

    def wire_size(self) -> int:
        """Size of this message on the wire, in bytes."""
        return sizes.HEADER_SIZE

    def kind(self) -> str:
        """Short human-readable tag, used in stats and logs."""
        return type(self).__name__
