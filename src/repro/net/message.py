"""Base message type for the simulated network.

Concrete protocol messages subclass :class:`Message` and implement
:meth:`Message.wire_size` so the NIC serializer can charge transmission time.
"""

from __future__ import annotations

from ..net import sizes


class Message:
    """Base class for all simulated network messages.

    Subclasses should set ``__slots__`` and override :meth:`wire_size`.
    """

    # ``trace_ctx`` is the causal trace context riding along with a sampled
    # message (see repro.obs.ctx).  It is wire-size-exempt by construction:
    # ``wire_size`` implementations never read it, so stamping a context
    # cannot perturb NIC serialization times — a hard requirement for traced
    # and untraced runs to stay bit-identical.  Like the memo, it is left
    # unset (AttributeError) rather than None on the common path.
    __slots__ = ("_wire_size_memo", "trace_ctx")

    def wire_size(self) -> int:
        """Size of this message on the wire, in bytes."""
        return sizes.HEADER_SIZE

    def wire_size_cached(self) -> int:
        """Per-instance memoized :meth:`wire_size`.

        The network calls this once per transmission; a multicast through the
        reliable transport (one :class:`~repro.net.transport.DataMsg` wrapper
        per destination over a shared payload) and every retransmission reuse
        the first computation.  Contract: a message's wire size is fixed once
        it has been handed to the network — all protocol layers here treat
        messages as immutable after send.
        """
        try:
            return self._wire_size_memo
        except AttributeError:
            size = self.wire_size()
            self._wire_size_memo = size
            return size

    def kind(self) -> str:
        """Short human-readable tag, used in stats and logs."""
        return type(self).__name__


class MessageArena:
    """Per-class freelists for short-lived fan-out messages.

    The network retires a pooled message once every copy of it is provably
    delivered (its arrival-time upper bound lies strictly in the simulated
    past), after which protocol code may reuse the object for its next send
    instead of allocating a fresh one — steady-state sends of the hottest
    message classes then allocate nothing.

    Contract for pooling a class:

    * handlers must not retain the message *object* beyond the handler call
      (retaining fields pulled out of it — signatures, digests — is fine);
    * a given object is broadcast at most once per acquire (re-broadcasting
      the same object, as CERT forwarding does, disqualifies the class).

    The owning network only creates an arena when delivery bounds are known
    and nothing observes message identity across deliveries — in particular
    never under ``REPRO_SANITIZE=1``, whose freeze-after-send guard keys on
    ``id(msg)``.
    """

    __slots__ = ("pools", "limit", "hits", "misses", "released")

    def __init__(self, limit: int = 256) -> None:
        #: class -> free instances; registration marks a class as pooled.
        self.pools: dict[type, list] = {}
        #: Per-class cap on retained free instances.
        self.limit = limit
        self.hits = 0
        self.misses = 0
        self.released = 0

    def register(self, cls: type) -> None:
        """Mark ``cls`` as pooled (idempotent)."""
        self.pools.setdefault(cls, [])

    def acquire(self, cls: type):
        """A free instance of ``cls`` to refill, or None to allocate fresh."""
        pool = self.pools.get(cls)
        if pool:
            self.hits += 1
            return pool.pop()
        self.misses += 1
        return None

    def release(self, msg: Message) -> None:
        """Return a retired message to its pool (unknown classes ignored)."""
        pool = self.pools.get(msg.__class__)
        if pool is not None and len(pool) < self.limit:
            # The wire-size memo is content-dependent; drop it so the next
            # acquire recomputes for the refilled fields.  The trace context
            # must go too: a recycled object must not smuggle the previous
            # send's causal identity onto an unsampled message.
            try:
                del msg._wire_size_memo
            except AttributeError:
                pass
            try:
                del msg.trace_ctx
            except AttributeError:
                pass
            pool.append(msg)
            self.released += 1
