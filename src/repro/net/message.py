"""Base message type for the simulated network.

Concrete protocol messages subclass :class:`Message` and implement
:meth:`Message.wire_size` so the NIC serializer can charge transmission time.
"""

from __future__ import annotations

from ..net import sizes


class Message:
    """Base class for all simulated network messages.

    Subclasses should set ``__slots__`` and override :meth:`wire_size`.
    """

    __slots__ = ("_wire_size_memo",)

    def wire_size(self) -> int:
        """Size of this message on the wire, in bytes."""
        return sizes.HEADER_SIZE

    def wire_size_cached(self) -> int:
        """Per-instance memoized :meth:`wire_size`.

        The network calls this once per transmission; a multicast through the
        reliable transport (one :class:`~repro.net.transport.DataMsg` wrapper
        per destination over a shared payload) and every retransmission reuse
        the first computation.  Contract: a message's wire size is fixed once
        it has been handed to the network — all protocol layers here treat
        messages as immutable after send.
        """
        try:
            return self._wire_size_memo
        except AttributeError:
            size = self.wire_size()
            self._wire_size_memo = size
            return size

    def kind(self) -> str:
        """Short human-readable tag, used in stats and logs."""
        return type(self).__name__
