"""Per-node CPU cost model.

The paper attributes part of the latency growth with ``n`` to cryptographic
work (BLS aggregation/verification) and database reads on vertex delivery.
We charge a configurable per-message processing cost on the *receiving* node;
the network serializes these costs through a single per-node CPU queue, so a
node swamped with messages exhibits the same queueing delays a real machine
would.

Costs default to zero so unit tests are unaffected unless they opt in.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..net.message import Message


class CpuModel:
    """Charges processing time per received message.

    Args:
        per_message: fixed cost per message (dispatch, deserialization).
        per_signature_verify: cost charged for messages flagged as carrying a
            signature (``msg.signed`` truthy when present).
        per_byte: cost proportional to message size (hashing large blocks).
    """

    def __init__(
        self,
        per_message: float = 0.0,
        per_signature_verify: float = 0.0,
        per_byte: float = 0.0,
    ) -> None:
        if min(per_message, per_signature_verify, per_byte) < 0:
            raise ConfigError("CPU costs must be non-negative")
        self.per_message = per_message
        self.per_signature_verify = per_signature_verify
        self.per_byte = per_byte

    def cost(self, msg: Message) -> float:
        """Processing cost in seconds for receiving ``msg``."""
        total = self.per_message
        if self.per_byte:
            total += self.per_byte * msg.wire_size()
        if self.per_signature_verify and getattr(msg, "signed", False):
            total += self.per_signature_verify
        return total
