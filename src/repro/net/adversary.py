"""Network adversaries for the partial-synchrony model (Dwork et al.).

Before GST the adversary may delay any message arbitrarily; after GST every
message must arrive within Δ of being sent.  The adversary only *adds* delay —
the reliable-link assumption the paper's RBC machinery relies on.  Message
*loss*, duplication, and partitions are modelled separately by
:mod:`repro.net.faults` (and repaired by :mod:`repro.net.transport`); delay
adversaries and link-fault models compose freely on one network.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..net.message import Message
from ..sim.rng import make_rng
from ..types import NodeId


class DelayAdversary:
    """Base adversary: adds no delay.  Subclass and override :meth:`extra_delay`."""

    def extra_delay(self, src: NodeId, dst: NodeId, msg: Message, now: float) -> float:
        """Extra delay (seconds) injected on top of the latency model."""
        return 0.0


class PartialSynchronyAdversary(DelayAdversary):
    """Random adversarial delays before GST, none after.

    Messages *sent* before GST receive a uniform extra delay in
    ``[0, max_extra)``, but never arrive later than ``gst + delta`` — matching
    the model where after GST all in-flight messages arrive within Δ.
    """

    def __init__(self, gst: float, max_extra: float, delta: float, seed: int = 0) -> None:
        if gst < 0 or max_extra < 0 or delta <= 0:
            raise ConfigError("gst/max_extra must be >= 0 and delta > 0")
        self.gst = gst
        self.max_extra = max_extra
        self.delta = delta
        self._rng = make_rng(seed, "partial-synchrony")

    def extra_delay(self, src: NodeId, dst: NodeId, msg: Message, now: float) -> float:
        if now >= self.gst:
            return 0.0
        extra = self._rng.random() * self.max_extra
        # After GST the message must be delivered within delta of max(send, GST).
        latest = self.gst + self.delta
        if now + extra > latest:
            extra = latest - now
        return extra


class TargetedDelayAdversary(DelayAdversary):
    """Delays traffic to/from selected victims by a fixed amount until ``until``.

    Used in tests to starve specific parties (e.g. force the block-download
    path of the tribe-assisted RBC or a leader timeout).
    """

    def __init__(self, victims: set[NodeId], extra: float, until: float = float("inf")) -> None:
        if extra < 0:
            raise ConfigError("extra delay must be non-negative")
        self.victims = set(victims)
        self.extra = extra
        self.until = until

    def extra_delay(self, src: NodeId, dst: NodeId, msg: Message, now: float) -> float:
        if now >= self.until:
            return 0.0
        if src in self.victims or dst in self.victims:
            return self.extra
        return 0.0
