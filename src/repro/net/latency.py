"""Propagation-latency models, including the paper's Table 1 GCP matrix.

The paper distributes nodes evenly across five GCP regions and reports the
round-trip ping latencies between them (Table 1).  :class:`GeoLatencyModel`
uses one-way delays of RTT/2 plus multiplicative jitter, with nodes assigned
to regions round-robin exactly as in the paper's setup.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import ConfigError
from ..sim.rng import make_rng
from ..types import NodeId

#: Region names from Table 1, in the paper's order.
GCP_REGIONS = (
    "us-east1",
    "us-west1",
    "europe-north1",
    "asia-northeast1",
    "australia-southeast1",
)

#: Round-trip ping latencies in milliseconds between GCP regions (Table 1).
GCP_RTT_MS: dict[tuple[str, str], float] = {}


def _fill_gcp_matrix() -> None:
    rows = (
        (0.75, 66.14, 114.75, 160.28, 197.98),
        (66.15, 0.66, 158.13, 89.56, 138.33),
        (115.40, 158.38, 0.69, 245.15, 295.13),
        (159.89, 90.05, 246.01, 0.66, 105.58),
        (197.60, 139.02, 294.36, 108.26, 0.58),
    )
    for i, src in enumerate(GCP_REGIONS):
        for j, dst in enumerate(GCP_REGIONS):
            GCP_RTT_MS[(src, dst)] = rows[i][j]


_fill_gcp_matrix()


def round_robin_regions(n: int, regions: tuple[str, ...] = GCP_REGIONS) -> list[str]:
    """Assign ``n`` nodes to regions round-robin ('distributed evenly')."""
    return [regions[i % len(regions)] for i in range(n)]


class LatencyModel(ABC):
    """Computes the one-way propagation delay between two nodes."""

    @abstractmethod
    def delay(self, src: NodeId, dst: NodeId) -> float:
        """One-way delay in seconds for a message from ``src`` to ``dst``."""

    def constant_delays(self, n: int) -> list[list[float]] | None:
        """Per-link delay table when this model is deterministic, else None.

        Jitter-free models return an ``n × n`` matrix so the network can skip
        the per-message :meth:`delay` call on its hot path.  Models with any
        randomness must return None — precomputing would change which RNG
        draws each message consumes and break run-for-run determinism.
        """
        return None

    def jitter_params(self, n: int) -> tuple | None:
        """Hot-path spec for jittered models, or None to use :meth:`delay`.

        Returns ``("add", base, jitter, draw)`` when the delay is
        ``base + draw() * jitter`` (draw = the model's RNG ``random`` bound
        method), or ``("mul", rows, jitter, draw)`` when it is
        ``rows[src][dst] * (1.0 + draw() * jitter)``.  The network inlines
        the exact same floating-point expression per destination, so runs
        are bit-identical to calling :meth:`delay` — including the RNG draw
        order (exactly one draw per delivery, in destination order).  Models
        with other formulas return None and keep the per-message call.
        """
        return None

    def mean_delay(self, n: int) -> float:
        """Mean one-way delay over all ordered pairs (used by the analytical
        model); subclasses may override with a cheaper computation."""
        total = 0.0
        pairs = 0
        for i in range(n):
            for j in range(n):
                if i != j:
                    total += self.delay(i, j)
                    pairs += 1
        return total / pairs if pairs else 0.0


class UniformLatencyModel(LatencyModel):
    """Constant one-way delay with optional jitter; handy for unit tests."""

    def __init__(self, base: float = 0.05, jitter: float = 0.0, seed: int = 0) -> None:
        if base < 0 or jitter < 0:
            raise ConfigError("latency/jitter must be non-negative")
        self._base = base
        self._jitter = jitter
        # Jitter-free models never draw: deriving a stream anyway would
        # register a phantom consumer with the RNG-collision sanitizer.
        self._rng = make_rng(seed, "uniform-latency") if jitter else None

    def delay(self, src: NodeId, dst: NodeId) -> float:
        if self._jitter == 0.0:
            return self._base
        return self._base + self._rng.random() * self._jitter

    def constant_delays(self, n: int) -> list[list[float]] | None:
        if self._jitter != 0.0:
            return None
        return [[self._base] * n for _ in range(n)]

    def jitter_params(self, n: int) -> tuple | None:
        if self._jitter == 0.0:
            return None
        return ("add", self._base, self._jitter, self._rng.random)

    def mean_delay(self, n: int) -> float:
        return self._base + self._jitter / 2.0


class GeoLatencyModel(LatencyModel):
    """One-way delays from a region RTT matrix with multiplicative jitter.

    Delay(src → dst) = RTT(region(src), region(dst)) / 2 × (1 + U[0, jitter)).
    Intra-machine delivery (``src == dst``) uses the intra-region RTT, which in
    Table 1 is sub-millisecond.
    """

    def __init__(
        self,
        node_regions: list[str],
        rtt_ms: dict[tuple[str, str], float] | None = None,
        jitter: float = 0.05,
        seed: int = 0,
    ) -> None:
        if jitter < 0:
            raise ConfigError("jitter must be non-negative")
        rtts = GCP_RTT_MS if rtt_ms is None else rtt_ms
        self._regions = list(node_regions)
        self._jitter = jitter
        self._rng = make_rng(seed, "geo-latency") if jitter else None
        # Pre-resolve per-pair one-way base delays in seconds.
        self._base: list[list[float]] = []
        for src_region in self._regions:
            row = []
            for dst_region in self._regions:
                try:
                    rtt = rtts[(src_region, dst_region)]
                except KeyError as exc:
                    raise ConfigError(f"no RTT entry for {src_region}->{dst_region}") from exc
                if rtt < 0:
                    raise ConfigError(
                        f"negative RTT for {src_region}->{dst_region}: {rtt}"
                    )
                row.append(rtt / 2.0 / 1000.0)
            self._base.append(row)
        self._mean = None

    @property
    def node_regions(self) -> list[str]:
        return list(self._regions)

    def delay(self, src: NodeId, dst: NodeId) -> float:
        base = self._base[src][dst]
        if self._jitter == 0.0:
            return base
        return base * (1.0 + self._rng.random() * self._jitter)

    def constant_delays(self, n: int) -> list[list[float]] | None:
        if self._jitter != 0.0:
            return None
        return [row[:n] for row in self._base[:n]]

    def jitter_params(self, n: int) -> tuple | None:
        if self._jitter == 0.0:
            return None
        return ("mul", [row[:n] for row in self._base[:n]], self._jitter, self._rng.random)

    def mean_delay(self, n: int | None = None) -> float:
        n = len(self._regions) if n is None else n
        total = 0.0
        pairs = 0
        for i in range(n):
            for j in range(n):
                if i != j:
                    total += self._base[i][j]
                    pairs += 1
        mean = total / pairs if pairs else 0.0
        return mean * (1.0 + self._jitter / 2.0)


def gcp_latency_model(n: int, jitter: float = 0.05, seed: int = 0) -> GeoLatencyModel:
    """The paper's deployment: ``n`` nodes spread evenly over five GCP regions."""
    return GeoLatencyModel(round_robin_regions(n), jitter=jitter, seed=seed)
