"""Simulated wide-area network substrate.

Models the three effects that shape DAG-BFT performance in the paper's
geo-distributed testbed:

* **Propagation latency** — per-region one-way delays derived from the paper's
  Table 1 GCP ping matrix (:mod:`repro.net.latency`).
* **Bandwidth** — each node owns an outbound NIC that serializes messages at a
  configurable rate; multicasting a 3 MB block to 149 peers occupies the NIC
  for 149 transmission times.  This queueing effect is the throughput
  bottleneck the paper attacks (:class:`~repro.net.network.Network`).
* **Partial synchrony** — an adversary may inflate delays arbitrarily before
  GST and up to Δ after it (:mod:`repro.net.adversary`).

Message CPU costs (signature verification, DB lookups) are charged by an
optional :class:`~repro.net.cpu.CpuModel`, reproducing the latency growth with
``n`` reported in §7.
"""

from .adversary import DelayAdversary, PartialSynchronyAdversary, TargetedDelayAdversary
from .cpu import CpuModel
from .faults import (
    ChurnEvent,
    ChurnSchedule,
    CompositeFault,
    LinkFault,
    LossyLink,
    Partition,
    PartitionAdversary,
    partition,
)
from .latency import (
    GCP_REGIONS,
    GCP_RTT_MS,
    GeoLatencyModel,
    LatencyModel,
    UniformLatencyModel,
    round_robin_regions,
)
from .message import Message
from .network import Network, NetworkStats
from .transport import ReliableTransport

__all__ = [
    "Message",
    "Network",
    "NetworkStats",
    "ReliableTransport",
    "LinkFault",
    "LossyLink",
    "Partition",
    "partition",
    "PartitionAdversary",
    "CompositeFault",
    "ChurnEvent",
    "ChurnSchedule",
    "TargetedDelayAdversary",
    "LatencyModel",
    "UniformLatencyModel",
    "GeoLatencyModel",
    "GCP_REGIONS",
    "GCP_RTT_MS",
    "round_robin_regions",
    "DelayAdversary",
    "PartialSynchronyAdversary",
    "CpuModel",
]
