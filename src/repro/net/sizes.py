"""Wire-size constants (bytes) shared by all message types.

The paper's complexity analysis is parameterised by the security parameter κ
(hash and signature size) and the transaction size ℓ/|txn|; these constants
make message sizes concrete so the bandwidth model has real bytes to move.
"""

from __future__ import annotations

#: Security parameter κ: digest size (SHA-256) in bytes.
HASH_SIZE = 32

#: Individual signature size (Ed25519-like) in bytes.
SIGNATURE_SIZE = 64

#: BLS aggregate signature size in bytes (one group element).
BLS_SIGNATURE_SIZE = 48

#: Fixed per-message framing overhead: type tag, sender, round, lengths.
HEADER_SIZE = 40

#: A vertex reference on the wire: (round, source, digest).
VERTEX_REF_SIZE = 8 + 4 + HASH_SIZE

#: Default transaction size used throughout the paper's evaluation (512 B).
DEFAULT_TXN_SIZE = 512


def bitmap_size(n: int) -> int:
    """Size of an ``n``-party signer bitmap in bytes (paper §4: 'merely a bit
    vector indicating who voted')."""
    return (n + 7) // 8


def multisig_size(n: int) -> int:
    """Wire size of a BLS multi-signature over an ``n``-party committee."""
    return BLS_SIGNATURE_SIZE + bitmap_size(n)
