"""Link-level fault models: loss, duplication, partitions, churn.

The paper's RBC machinery assumes reliable authenticated links.  This module
*breaks* that assumption on purpose: a :class:`LinkFault` decides, per
message copy, whether the physical network delivers it once (1), drops it
(0), or duplicates it (≥2).  The reliable-link abstraction is then *rebuilt*
on top by :class:`~repro.net.transport.ReliableTransport`, the way production
BFT systems implement reliable channels over UDP/TCP-with-resets — so the
protocol layers above stay unchanged while the evaluation exercises real
degraded-path behaviour.

Fault models compose orthogonally with :class:`~repro.net.adversary.DelayAdversary`
(which only ever *delays*): the :class:`~repro.net.network.Network` takes both,
applies the fault model to decide copy counts, and the delay adversary to
decide per-copy extra latency.

Loopback (``src == dst``) traffic never traverses the wire and is exempt from
all fault models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import ConfigError
from ..sim.rng import make_rng
from ..types import NodeId
from .message import Message


class LinkFault:
    """Base fault model: a perfect link (every message delivered once)."""

    def copies(self, src: NodeId, dst: NodeId, msg: Message, now: float) -> int:
        """How many copies of ``msg`` the wire delivers (0 = dropped)."""
        return 1


class LossyLink(LinkFault):
    """Independent per-link drop/duplicate probabilities.

    Every directed link ``(src, dst)`` owns its own named RNG stream derived
    from the master seed, so runs are deterministic and changing traffic on
    one link never perturbs the coin flips of another.
    """

    def __init__(
        self,
        drop_prob: float,
        duplicate_prob: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= drop_prob < 1.0:
            raise ConfigError(f"drop_prob must be in [0, 1), got {drop_prob}")
        if not 0.0 <= duplicate_prob < 1.0:
            raise ConfigError(f"duplicate_prob must be in [0, 1), got {duplicate_prob}")
        if drop_prob + duplicate_prob >= 1.0:
            raise ConfigError("drop_prob + duplicate_prob must stay below 1")
        self.drop_prob = drop_prob
        self.duplicate_prob = duplicate_prob
        self.seed = seed
        self._rngs: dict[tuple[NodeId, NodeId], object] = {}

    def _rng(self, src: NodeId, dst: NodeId):
        rng = self._rngs.get((src, dst))
        if rng is None:
            rng = self._rngs[(src, dst)] = make_rng(self.seed, "lossy-link", src, dst)
        return rng

    def copies(self, src: NodeId, dst: NodeId, msg: Message, now: float) -> int:
        draw = self._rng(src, dst).random()
        if draw < self.drop_prob:
            return 0
        if draw < self.drop_prob + self.duplicate_prob:
            return 2
        return 1


@dataclass(frozen=True)
class Partition:
    """One scripted network split: active on ``[start, end)``.

    ``groups`` lists disjoint sets of nodes; traffic is delivered only within
    a group.  Nodes appearing in no group form one implicit extra group, so
    ``Partition(3.0, 8.0, ({0, 1, 2},))`` splits nodes 0–2 from everyone else.
    """

    start: float
    end: float
    groups: tuple[frozenset[NodeId], ...]

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigError(f"partition window [{self.start}, {self.end}) is empty")
        seen: set[NodeId] = set()
        for group in self.groups:
            if seen & group:
                raise ConfigError(f"partition groups overlap: {sorted(seen & group)}")
            seen |= group

    def severs(self, src: NodeId, dst: NodeId) -> bool:
        """Does this partition cut the ``src -> dst`` link while active?"""
        src_group = dst_group = None
        for idx, group in enumerate(self.groups):
            if src in group:
                src_group = idx
            if dst in group:
                dst_group = idx
        # None = the implicit "rest" group.
        return src_group != dst_group


def partition(start: float, end: float, *groups: Iterable[NodeId]) -> Partition:
    """Convenience constructor: ``partition(3, 8, {0, 1, 2})``."""
    return Partition(start, end, tuple(frozenset(g) for g in groups))


class PartitionAdversary(LinkFault):
    """Drops all traffic crossing a scripted sequence of splits.

    Messages are cut at *send* time: a message sent during an active split
    toward the far side is lost, exactly like a discarded IP packet.  Heal is
    instantaneous at each window's ``end`` — composition with
    :class:`~repro.net.transport.ReliableTransport` then demonstrates the GST
    argument: retransmission restores every lost message after heal.
    """

    def __init__(self, schedule: Sequence[Partition]) -> None:
        self.schedule = tuple(schedule)

    def copies(self, src: NodeId, dst: NodeId, msg: Message, now: float) -> int:
        for split in self.schedule:
            if split.start <= now < split.end and split.severs(src, dst):
                return 0
        return 1

    @property
    def heal_time(self) -> float:
        """When the last scripted split heals (0.0 with an empty schedule)."""
        return max((split.end for split in self.schedule), default=0.0)


class CompositeFault(LinkFault):
    """Combines fault models: any drop wins; duplicate counts multiply."""

    def __init__(self, models: Sequence[LinkFault]) -> None:
        self.models = tuple(models)

    def copies(self, src: NodeId, dst: NodeId, msg: Message, now: float) -> int:
        total = 1
        for model in self.models:
            n = model.copies(src, dst, msg, now)
            if n == 0:
                return 0
            total *= n
        return total


@dataclass(frozen=True)
class ChurnEvent:
    """One scripted lifecycle change of a node."""

    time: float
    node: NodeId
    action: str  # "crash" | "recover"

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigError("churn event time cannot be negative")
        if self.action not in ("crash", "recover"):
            raise ConfigError(f"unknown churn action {self.action!r}")


class ChurnSchedule:
    """Scripted crash/recover events, installed onto a simulator + network."""

    def __init__(self, events: Iterable[ChurnEvent]) -> None:
        self.events = tuple(sorted(events, key=lambda e: (e.time, e.node)))

    @classmethod
    def outages(
        cls, spec: Iterable[tuple[NodeId, float, float | None]]
    ) -> "ChurnSchedule":
        """Build from ``(node, down_at, up_at)`` triples (``up_at=None``:
        the node stays down)."""
        events: list[ChurnEvent] = []
        for node, down_at, up_at in spec:
            events.append(ChurnEvent(down_at, node, "crash"))
            if up_at is not None:
                if up_at <= down_at:
                    raise ConfigError(
                        f"node {node} recovery at {up_at} precedes crash at {down_at}"
                    )
                events.append(ChurnEvent(up_at, node, "recover"))
        return cls(events)

    def install(self, sim, network) -> None:
        """Schedule every event (idempotent per instance: call once)."""
        for event in self.events:
            action = network.crash if event.action == "crash" else network.recover
            sim.schedule_at(event.time, action, event.node)

    def downtime_of(self, node: NodeId) -> list[tuple[float, float | None]]:
        """The ``(down_at, up_at)`` windows of one node (``None`` = forever)."""
        windows: list[tuple[float, float | None]] = []
        down_at: float | None = None
        for event in self.events:
            if event.node != node:
                continue
            if event.action == "crash" and down_at is None:
                down_at = event.time
            elif event.action == "recover" and down_at is not None:
                windows.append((down_at, event.time))
                down_at = None
        if down_at is not None:
            windows.append((down_at, None))
        return windows

    @property
    def settle_time(self) -> float:
        """Time of the last scripted event (0.0 when empty)."""
        return self.events[-1].time if self.events else 0.0
