"""Reliable channels implemented over a faulty physical network.

The paper (like most BFT literature) *assumes* reliable authenticated links.
:class:`ReliableTransport` implements that abstraction the way deployed
systems do — over a wire that may drop and duplicate packets
(:mod:`repro.net.faults`):

* **Sequence numbers** — every directed channel ``src -> dst`` stamps outgoing
  messages with a monotonically increasing sequence number.
* **Acks + retransmission** — the receiver acks every data message; the
  sender retransmits unacked messages on a timer with capped exponential
  backoff, so a message sent before a partition is delivered after it heals
  (the GST argument made concrete).
* **Duplicate suppression** — the receiver tracks delivered sequence numbers
  per channel (contiguous watermark + sparse out-of-order set, so memory is
  bounded by the reorder window) and delivers each message exactly once.

The class mirrors the :class:`~repro.net.network.Network` API (``register`` /
``send`` / ``multicast`` / ``broadcast`` / ``crash`` / ``recover`` / stats /
tracer), so every protocol layer above runs unchanged on either.

Crash semantics are fail-stop with persisted state: on ``crash`` the node's
retransmission timers are cancelled and its unacked buffer is discarded
(in-flight messages die with the process); sequence counters and receive
windows survive to ``recover``, so channels resume consistently.  Messages
lost *while* a node is down are intentionally not replayed — recovering the
content is the job of the DAG catch-up protocol
(:mod:`repro.consensus.sync`), not the transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import NetworkError
from ..types import NodeId
from . import sizes
from .message import Message
from .network import Handler, Network

#: Directed channel identifier.
Channel = tuple[NodeId, NodeId]


@dataclass(slots=True)
class DataMsg(Message):
    """A payload message stamped with a per-channel sequence number."""

    seq: int
    payload: Message

    def wire_size(self) -> int:
        # The shared payload's size is memoized, so the per-destination
        # DataMsg wrappers of one multicast compute it exactly once.
        return self.payload.wire_size_cached() + 8  # 8-byte sequence number

    def kind(self) -> str:
        # Report the inner kind so per-kind traffic stats stay meaningful
        # (retransmissions count as extra traffic of the wrapped kind).
        return self.payload.kind()

    @property
    def signed(self) -> bool:
        return bool(getattr(self.payload, "signed", False))


@dataclass(slots=True)
class AckMsg(Message):
    """Acknowledges receipt of one sequence number on a channel."""

    seq: int

    def wire_size(self) -> int:
        return sizes.HEADER_SIZE


@dataclass(slots=True)
class _SendState:
    """Sender side of one directed channel."""

    next_seq: int = 1
    #: seq -> [payload, timer handle, current timeout]
    unacked: dict[int, list] = field(default_factory=dict)


@dataclass(slots=True)
class _RecvState:
    """Receiver side of one directed channel (duplicate suppression)."""

    #: Every seq <= contiguous has been delivered.
    contiguous: int = 0
    #: Delivered seqs above the watermark (bounded by the reorder window).
    sparse: set[int] = field(default_factory=set)

    def accept(self, seq: int) -> bool:
        """Record ``seq``; returns False if it was already delivered."""
        if seq <= self.contiguous or seq in self.sparse:
            return False
        self.sparse.add(seq)
        while self.contiguous + 1 in self.sparse:
            self.contiguous += 1
            self.sparse.discard(self.contiguous)
        return True


class ReliableTransport:
    """Network-compatible facade that restores the reliable-link abstraction.

    Args:
        network: the (possibly lossy) physical network underneath.
        ack_timeout: initial retransmission timeout in seconds.
        backoff: multiplicative backoff factor per retransmission.
        max_timeout: retransmission interval cap (prevents unbounded silence
            but also flooding while a peer is partitioned or down).
    """

    def __init__(
        self,
        network: Network,
        ack_timeout: float = 0.25,
        backoff: float = 2.0,
        max_timeout: float = 8.0,
    ) -> None:
        if ack_timeout <= 0:
            raise NetworkError("ack_timeout must be positive")
        if backoff < 1.0:
            raise NetworkError("backoff factor must be >= 1")
        if max_timeout < ack_timeout:
            raise NetworkError("max_timeout must be >= ack_timeout")
        self.net = network
        self.sim = network.sim
        self.ack_timeout = ack_timeout
        self.backoff = backoff
        self.max_timeout = max_timeout
        self._handlers: list[Handler | None] = [None] * network.n
        self._send: dict[Channel, _SendState] = {}
        self._recv: dict[Channel, _RecvState] = {}
        #: Retransmission counter (observability + tests).
        self.retransmissions = 0
        #: Duplicates suppressed at the receiver.
        self.duplicates_suppressed = 0
        for node_id in range(network.n):
            network.on_lifecycle(
                node_id,
                on_crash=lambda node_id=node_id: self._on_node_crash(node_id),
            )

    # -- Network API parity -------------------------------------------------------

    @property
    def n(self) -> int:
        return self.net.n

    @property
    def stats(self):
        return self.net.stats

    @property
    def tracer(self):
        return self.net.tracer

    @property
    def track_kinds(self) -> bool:
        return self.net.track_kinds

    @property
    def latency(self):
        return self.net.latency

    def register(self, node_id: NodeId, handler: Handler) -> None:
        """Register the (reliable) message handler for ``node_id``."""
        if not 0 <= node_id < self.net.n:
            raise NetworkError(f"node id {node_id} out of range (n={self.net.n})")
        self._handlers[node_id] = handler
        self.net.register(node_id, lambda src, msg: self._on_raw(node_id, src, msg))

    def on_lifecycle(self, node_id: NodeId, on_crash=None, on_recover=None) -> None:
        self.net.on_lifecycle(node_id, on_crash, on_recover)

    def crash(self, node_id: NodeId) -> None:
        self.net.crash(node_id)

    def recover(self, node_id: NodeId) -> None:
        self.net.recover(node_id)

    def is_crashed(self, node_id: NodeId) -> bool:
        return self.net.is_crashed(node_id)

    # -- sending ------------------------------------------------------------------

    def send(self, src: NodeId, dst: NodeId, msg: Message) -> None:
        """Send one message with at-least-once wire delivery, exactly-once
        handler delivery."""
        if self.net.is_crashed(src):
            return
        if dst == src:
            # Loopback never touches the wire: no loss, no seq/ack overhead.
            self.net.send(src, dst, msg)
            return
        state = self._send_state(src, dst)
        seq = state.next_seq
        state.next_seq += 1
        data = DataMsg(seq, msg)
        timer = self.sim.schedule(
            self.ack_timeout, self._retransmit, src, dst, seq
        )
        state.unacked[seq] = [data, timer, self.ack_timeout]
        self.net.send(src, dst, data)

    def multicast(self, src: NodeId, dsts, msg: Message) -> None:
        for dst in dsts:
            self.send(src, dst, msg)

    def broadcast(self, src: NodeId, msg: Message) -> None:
        self.multicast(src, range(self.net.n), msg)

    def _send_state(self, src: NodeId, dst: NodeId) -> _SendState:
        state = self._send.get((src, dst))
        if state is None:
            state = self._send[(src, dst)] = _SendState()
        return state

    def _retransmit(self, src: NodeId, dst: NodeId, seq: int) -> None:
        state = self._send.get((src, dst))
        if state is None:
            return
        entry = state.unacked.get(seq)
        if entry is None:
            return  # acked in the meantime
        if self.net.is_crashed(src):
            # Defensive: crash cancels these timers; an in-flight firing must
            # still not transmit from beyond the grave.
            return
        data, _old_timer, timeout = entry
        self.retransmissions += 1
        if self.net.tracer.enabled:
            self.net.tracer.counter(
                "transport.retransmit", node=src, dst=dst, kind=data.kind(),
            )
        timeout = min(timeout * self.backoff, self.max_timeout)
        entry[1] = self.sim.schedule(timeout, self._retransmit, src, dst, seq)
        entry[2] = timeout
        self.net.send(src, dst, data)

    # -- receiving ----------------------------------------------------------------

    def _on_raw(self, dst: NodeId, src: NodeId, msg: Message) -> None:
        if isinstance(msg, AckMsg):
            self._on_ack(dst, src, msg.seq)
            return
        if not isinstance(msg, DataMsg):
            # Untracked traffic (e.g. loopback or pre-wrap messages): pass up.
            handler = self._handlers[dst]
            if handler is not None:
                handler(src, msg)
            return
        # Always (re-)ack, even duplicates: the original ack may have been
        # lost, and the sender retransmits until one gets through.
        self.net.send(dst, src, AckMsg(msg.seq))
        recv = self._recv.get((src, dst))
        if recv is None:
            recv = self._recv[(src, dst)] = _RecvState()
        if not recv.accept(msg.seq):
            self.duplicates_suppressed += 1
            return
        handler = self._handlers[dst]
        if handler is not None:
            handler(src, msg.payload)

    def _on_ack(self, sender: NodeId, acker: NodeId, seq: int) -> None:
        state = self._send.get((sender, acker))
        if state is None:
            return
        entry = state.unacked.pop(seq, None)
        if entry is not None:
            entry[1].cancel()

    # -- lifecycle ----------------------------------------------------------------

    def _on_node_crash(self, node_id: NodeId) -> None:
        """Fail-stop: the crashing node's in-flight sends die with it."""
        for (src, _dst), state in self._send.items():
            if src != node_id:
                continue
            for entry in state.unacked.values():
                entry[1].cancel()
            state.unacked.clear()

    # -- inspection ---------------------------------------------------------------

    def unacked_count(self, src: NodeId | None = None) -> int:
        """Outstanding unacked messages (optionally for one sender)."""
        return sum(
            len(state.unacked)
            for (s, _), state in self._send.items()
            if src is None or s == src
        )
