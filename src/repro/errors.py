"""Exception hierarchy for the repro library.

Every error raised by this package derives from :class:`ReproError`, so callers
can catch one type at an API boundary without masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration value is inconsistent or out of range."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class NetworkError(ReproError):
    """Invalid use of the simulated network (unknown node, bad size, ...)."""


class CryptoError(ReproError):
    """Signature/certificate construction or verification failure."""


class CommitteeError(ReproError):
    """Clan election or committee-statistics parameters are invalid."""


class BroadcastError(ReproError):
    """Invalid use of a reliable-broadcast instance."""


class DagError(ReproError):
    """DAG structural invariant violated (missing parents, duplicates, ...)."""


class ConsensusError(ReproError):
    """Consensus protocol invariant violated."""


class ExecutionError(ReproError):
    """State-machine execution failed (bad transaction, missing block, ...)."""


class SanitizerError(ReproError):
    """A runtime sanitizer (``REPRO_SANITIZE=1``) caught an invariant
    violation: a message mutated after send, an RNG stream collision, or a
    misuse of the sanitizer API itself."""
