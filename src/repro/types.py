"""Shared primitive types and quorum arithmetic.

The whole library identifies parties by small integers (``NodeId``) and
protocol rounds by non-negative integers (``Round``).  Quorum arithmetic for
the tribe (``f < n/3``) and for clans (``f_c < n_c/2``) lives here so that
every protocol module uses the same thresholds.
"""

from __future__ import annotations

from .errors import ConfigError

NodeId = int
Round = int

#: Round number used for the synthetic genesis vertices every node starts from.
GENESIS_ROUND: Round = 0


def max_faults(n: int) -> int:
    """Maximum Byzantine faults ``f = floor((n-1)/3)`` tolerated by a tribe of ``n``.

    >>> max_faults(4)
    1
    >>> max_faults(100)
    33
    """
    if n < 1:
        raise ConfigError(f"tribe size must be positive, got {n}")
    return (n - 1) // 3


def quorum_size(n: int) -> int:
    """Byzantine quorum for a tribe of ``n`` parties: ``ceil((n+f+1)/2)``.

    Equals the familiar ``2f + 1`` when ``n = 3f + 1``, and grows for tribe
    sizes between the 3f+1 steps so that any two quorums intersect in at
    least ``f + 1`` parties (the property every safety argument rests on —
    with a plain ``2f + 1`` at e.g. ``n = 12, f = 3``, two quorums can
    intersect in only 2 parties, all of them possibly Byzantine).

    >>> quorum_size(4), quorum_size(7), quorum_size(100)
    (3, 5, 67)
    >>> quorum_size(12)  # 2f+1 would be 7 and would NOT intersect safely
    8
    """
    n = int(n)
    f = max_faults(n)
    return (n + f) // 2 + 1


def clan_max_faults(n_c: int) -> int:
    """Maximum faults ``f_c`` a clan of ``n_c`` tolerates with honest majority.

    Honest majority requires strictly more honest than faulty members, i.e.
    ``f_c <= ceil(n_c / 2) - 1``.

    >>> clan_max_faults(5)
    2
    >>> clan_max_faults(6)
    2
    """
    if n_c < 1:
        raise ConfigError(f"clan size must be positive, got {n_c}")
    return (n_c + 1) // 2 - 1


def clan_response_quorum(n_c: int) -> int:
    """Replies a client needs from a clan: ``f_c + 1`` matching responses."""
    return clan_max_faults(n_c) + 1


def validate_tribe(n: int, f: int | None = None) -> int:
    """Validate ``(n, f)`` for the tribe; return the effective ``f``.

    ``f`` defaults to the maximum tolerated.  Raises :class:`ConfigError` when
    ``f >= n/3``.
    """
    limit = max_faults(n)
    if f is None:
        return limit
    if not 0 <= f <= limit:
        raise ConfigError(f"f={f} out of range for n={n} (max {limit})")
    return f
