"""Online protocol-health monitors.

Four observers attach to the existing deployment hook points and run *during*
the simulation:

* **Stall watchdog** — tracks every honest node's last round entry; when the
  tribe advances while a live node has not entered a round for
  ``stall_factor × leader_timeout``, a ``liveness`` anomaly names the laggard.
* **Commit-prefix safety monitor** — replays every honest node's ordered
  vertices against a shared canonical sequence; the first divergence is a
  ``safety`` anomaly (the invariant the whole protocol exists to uphold).
* **Clan health monitor** (SMR runtimes) — watches each clan's live-executor
  margin against the client quorum ``f_c + 1`` on crashes, and each
  executor's block sequence for execution divergence.
* **Equivocation collector** — surfaces duplicate/conflicting vertex digests
  the RBC layer detects, plus the accountability evidence pools at the end
  of the run, as ``byzantine`` anomalies.

Design constraint (enforced by test): monitors are **purely callback-driven**.
They never schedule simulator events, never send messages, and never draw
randomness — so a monitored run produces bit-identical
:class:`~repro.bench.metrics.RunMetrics` to a plain one.  Anomalies are
collected on the suite (and mirrored to the tracer as typed ``anomaly``
records when tracing is on); the flight recorder snapshots recent per-node
history whenever a monitor fires or a node crashes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..obs.records import AnomalyRecord
from ..obs.tracer import ensure_tracer
from .recorder import FlightRecorder


@dataclass(frozen=True)
class MonitorConfig:
    """Tunables for the monitor suite."""

    #: A live node is stalled after ``stall_factor × leader_timeout`` without
    #: entering a round.  Generous by design: no-vote rounds legitimately
    #: take one or two timeouts.
    stall_factor: float = 8.0
    #: Flight-recorder ring size per node.
    ring_capacity: int = 256
    #: Hard cap on post-mortem bundles kept in memory.
    max_bundles: int = 32


class MonitorSuite:
    """The attachable set of online monitors (all off until attached)."""

    def __init__(self, tracer=None, config: MonitorConfig | None = None) -> None:
        self.tracer = ensure_tracer(tracer)
        self.config = config or MonitorConfig()
        self.recorder = FlightRecorder(
            capacity=self.config.ring_capacity,
            max_bundles=self.config.max_bundles,
        )
        self.anomalies: list[AnomalyRecord] = []
        self._deployment = None
        self._runtime = None
        self._finished = False
        # Stall watchdog state.
        self._last_round: dict[int, tuple[int, float]] = {}
        self._stall_flagged: set[tuple[int, int]] = set()
        self._next_stall_scan = 0.0
        # Prefix monitor state.
        self._canonical: list[tuple[int, int]] = []
        self._position: dict[int, int] = {}
        self._diverged: set[int] = set()
        # Clan health state.
        self._crashed: set[int] = set()
        self._clan_flagged: set[tuple[int, int]] = set()
        self._exec_seq: dict[int, list[str]] = {}
        self._exec_pos: dict[int, int] = {}
        self._exec_diverged: set[int] = set()
        # Equivocation collector state.
        self._equivocations: set[tuple[int, int]] = set()
        # Prefix-commit observer state: (round, source) pairs already flagged.
        self._truncated_prefixes: set[tuple[int, int]] = set()

    # -- attachment ---------------------------------------------------------

    def attach(self, deployment) -> "MonitorSuite":
        """Hook the consensus-level monitors into a deployment."""
        if self._deployment is not None:
            raise ValueError("monitor suite already attached")
        self._deployment = deployment
        #: Nodes down from t=0 crash before the suite could observe it.
        self._crashed |= set(deployment.crashed)
        honest = set(deployment.honest_ids)
        for node in deployment.nodes:
            node_id = node.node_id
            network = deployment.network
            if hasattr(network, "on_lifecycle"):
                network.on_lifecycle(
                    node_id,
                    lambda n=node_id: self._on_crash(n),
                    lambda n=node_id: self._on_recover(n),
                )
            if node_id not in honest:
                continue
            node.on_round = self._on_round
            prev = node.on_ordered
            node.on_ordered = (
                lambda n, vertex, now, prev=prev: self._on_ordered(
                    n, vertex, now, prev
                )
            )
            node.rbc.on_equivocation = (
                lambda origin, round_, count, n=node_id: self._on_equivocation(
                    n, origin, round_, count
                )
            )
            node.on_prefix = self._on_prefix
        return self

    def attach_runtime(self, runtime) -> "MonitorSuite":
        """Hook everything, plus the clan health monitor, into an SMR runtime."""
        self.attach(runtime.deployment)
        self._runtime = runtime
        for node_id in sorted(runtime.executors):
            executor = runtime.executors[node_id]
            executor.on_executed = self._on_executed
        return self

    # -- anomaly plumbing ---------------------------------------------------

    def _raise(self, name: str, kind: str, node: int | None, now: float,
               **attrs: Any) -> None:
        record = AnomalyRecord(name=name, time=now, kind=kind, node=node, attrs=attrs)
        self.anomalies.append(record)
        self.tracer.anomaly(name, kind=kind, node=node, time=now, **attrs)
        if kind != "info":
            nodes = [node] if node is not None else None
            self.recorder.dump(name, now, nodes=nodes, kind=kind, **attrs)

    @property
    def safety_anomalies(self) -> list[AnomalyRecord]:
        return [a for a in self.anomalies if a.kind == "safety"]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for anomaly in self.anomalies:
            out[anomaly.kind] = out.get(anomaly.kind, 0) + 1
        return out

    # -- stall watchdog -----------------------------------------------------

    def _stall_threshold(self) -> float:
        return self.config.stall_factor * self._deployment.params.leader_timeout

    def _on_round(self, node, round_: int, now: float) -> None:
        node_id = node.node_id
        self._last_round[node_id] = (round_, now)
        self.recorder.note(node_id, now, "round", round=round_)
        if now >= self._next_stall_scan:
            self._next_stall_scan = now + self._stall_threshold() / 2
            self._scan_stalls(now)

    def _scan_stalls(self, now: float) -> None:
        threshold = self._stall_threshold()
        for node_id in sorted(self._last_round):
            if node_id in self._crashed:
                continue
            round_, entered = self._last_round[node_id]
            if now - entered <= threshold:
                continue
            if (node_id, round_) in self._stall_flagged:
                continue
            self._stall_flagged.add((node_id, round_))
            self._raise(
                "round.stall", "liveness", node_id, now,
                round=round_, stalled_for=now - entered, threshold=threshold,
            )

    # -- commit-prefix safety monitor ---------------------------------------

    def _on_ordered(self, node, vertex, now: float, prev) -> None:
        node_id = node.node_id
        if node_id not in self._diverged:
            pos = self._position.get(node_id, 0)
            key = vertex.key
            if pos == len(self._canonical):
                self._canonical.append(key)
            elif self._canonical[pos] != key:
                self._diverged.add(node_id)
                self._raise(
                    "commit.prefix_divergence", "safety", node_id, now,
                    position=pos,
                    expected=list(self._canonical[pos]),
                    got=list(key),
                )
            self._position[node_id] = pos + 1
            self.recorder.note(
                node_id, now, "ordered", round=key[0], source=key[1]
            )
        if prev is not None:
            prev(node, vertex, now)

    # -- clan health monitor ------------------------------------------------

    def _on_executed(self, node_id: int, block, now: float) -> None:
        if node_id in self._exec_diverged:
            return
        runtime = self._runtime
        clan_idx = runtime.cfg.clan_index_of(node_id)
        digest = block.payload_digest().hex()
        seq = self._exec_seq.setdefault(clan_idx, [])
        pos = self._exec_pos.get(node_id, 0)
        if pos == len(seq):
            seq.append(digest)
        elif seq[pos] != digest:
            self._exec_diverged.add(node_id)
            self._raise(
                "clan.execution_divergence", "safety", node_id, now,
                clan=clan_idx, position=pos, expected=seq[pos], got=digest,
            )
        self._exec_pos[node_id] = pos + 1
        self.recorder.note(node_id, now, "executed", digest=digest[:12])

    def _check_clan_margins(self, now: float) -> None:
        runtime = self._runtime
        if runtime is None:
            return
        cfg = runtime.cfg
        for clan_idx in range(cfg.num_clans):
            executors = [
                n for n in sorted(runtime.executors)
                if cfg.clan_index_of(n) == clan_idx
            ]
            live = [n for n in executors if n not in self._crashed]
            quorum = cfg.clan_client_quorum(clan_idx)
            margin = len(live) - quorum
            if margin >= 1 or (clan_idx, margin) in self._clan_flagged:
                continue
            self._clan_flagged.add((clan_idx, margin))
            kind = "liveness" if margin < 0 else "info"
            self._raise(
                "clan.quorum_margin", kind, None, now,
                clan=clan_idx, live=len(live), quorum=quorum, margin=margin,
            )

    # -- lifecycle ----------------------------------------------------------

    def _now(self) -> float:
        return self._deployment.sim.now

    def _on_crash(self, node_id: int) -> None:
        now = self._now()
        self._crashed.add(node_id)
        self.recorder.note(node_id, now, "crash")
        self.recorder.dump("crash", now, nodes=[node_id], node=node_id)
        self._check_clan_margins(now)

    def _on_recover(self, node_id: int) -> None:
        now = self._now()
        self._crashed.discard(node_id)
        self.recorder.note(node_id, now, "recover")

    # -- equivocation collector ---------------------------------------------

    def _on_equivocation(
        self, observer: int, origin: int, round_: int, count: int
    ) -> None:
        now = self._now()
        self.recorder.note(
            observer, now, "equivocation", origin=origin, round=round_
        )
        if (origin, round_) in self._equivocations:
            return
        self._equivocations.add((origin, round_))
        self._raise(
            "rbc.equivocation", "byzantine", origin, now,
            round=round_, observer=observer, conflicting=count,
        )

    # -- prefix-commit observer ---------------------------------------------

    def _on_prefix(self, node, vertex, k: int) -> None:
        """Certified-prefix commit decisions (prefix RBC mode only).

        A truncated commit is expected behaviour under a slow or withholding
        proposer — the rule exists so the round need not stall — but it is
        forensically interesting: the anomaly attributes the proposer whose
        tail never achieved clan availability."""
        now = self._now()
        observer = node.node_id
        self.recorder.note(
            observer, now, "prefix",
            round=vertex.round, source=vertex.source, committed=k,
        )
        if k >= vertex.block_chunks:
            return
        key = (vertex.round, vertex.source)
        if key in self._truncated_prefixes:
            return
        self._truncated_prefixes.add(key)
        self._raise(
            "prefix.truncated_commit", "info", vertex.source, now,
            round=vertex.round, committed=k, chunks=vertex.block_chunks,
            observer=observer,
        )

    # -- end of run ---------------------------------------------------------

    def finish(self) -> list[AnomalyRecord]:
        """End-of-run sweep: final stall scan, evidence pools, clan state.

        Idempotent; returns all anomalies collected over the run.
        """
        if self._finished or self._deployment is None:
            return self.anomalies
        self._finished = True
        now = self._now()
        self._scan_stalls(now)
        proofs = 0
        for node_id in sorted(set(self._deployment.honest_ids)):
            proofs += len(self._deployment.nodes[node_id].rbc.evidence.proofs)
        if proofs:
            self._raise(
                "rbc.evidence", "byzantine", None, now, proofs=proofs
            )
        runtime = self._runtime
        if runtime is not None:
            for clan_idx in range(runtime.cfg.num_clans):
                digests = {}
                for node_id in sorted(runtime.executors):
                    if runtime.cfg.clan_index_of(node_id) != clan_idx:
                        continue
                    if node_id in self._crashed:
                        continue
                    digests.setdefault(
                        runtime.executors[node_id].state_digest().hex(), []
                    ).append(node_id)
                if len(digests) > 1:
                    self._raise(
                        "clan.state_divergence", "safety", None, now,
                        clan=clan_idx,
                        states={d[:12]: n for d, n in sorted(digests.items())},
                    )
        return self.anomalies
