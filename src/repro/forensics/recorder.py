"""Anomaly flight recorder: bounded per-node rings of recent protocol events.

The monitor suite feeds every notable per-node event (round entries, ordered
vertices, crashes, equivocations) into the recorder's rings.  When a monitor
fires — or a node crashes — the recorder snapshots the implicated nodes'
recent history into a **post-mortem bundle**: enough context to see what the
node was doing in the moments before things went wrong, without retaining the
full run.  Bundles are capped so a pathological run cannot OOM the process.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any


class FlightRecorder:
    """Per-node rings of ``(time, kind, detail)`` protocol events."""

    def __init__(self, capacity: int = 256, max_bundles: int = 32) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self.max_bundles = max_bundles
        self._rings: dict[int, deque[tuple[float, str, dict[str, Any]]]] = {}
        #: Post-mortem bundles, in dump order.
        self.bundles: list[dict[str, Any]] = []
        #: Dumps suppressed because ``max_bundles`` was reached.
        self.suppressed = 0

    def note(self, node: int, time: float, kind: str, **detail: Any) -> None:
        """Append one event to a node's ring (evicting the oldest)."""
        ring = self._rings.get(node)
        if ring is None:
            ring = self._rings[node] = deque(maxlen=self.capacity)
        ring.append((time, kind, detail))

    def dump(
        self,
        reason: str,
        now: float,
        nodes: list[int] | None = None,
        **context: Any,
    ) -> dict[str, Any] | None:
        """Snapshot recent history into a bundle; ``None`` when at the cap."""
        if len(self.bundles) >= self.max_bundles:
            self.suppressed += 1
            return None
        if nodes is None:
            nodes = sorted(self._rings)
        bundle = {
            "reason": reason,
            "time": now,
            "context": context,
            "events": {
                node: [
                    {"time": t, "kind": kind, **detail}
                    for t, kind, detail in self._rings.get(node, ())
                ]
                for node in sorted(nodes)
            },
        }
        self.bundles.append(bundle)
        return bundle

    def export(self, path: str) -> int:
        """Write all bundles to ``path`` as a JSON document; returns count."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "bundles": self.bundles,
                    "suppressed": self.suppressed,
                    "capacity": self.capacity,
                },
                fh,
                indent=2,
                default=str,
            )
            fh.write("\n")
        return len(self.bundles)
