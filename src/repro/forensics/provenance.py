"""Commit provenance: rebuild the critical path of every committed block.

One streaming pass over a trace collects, per ``(round, proposer)`` commit:

* ``proposed_at`` — block creation / vertex broadcast (``smr.block`` or
  ``consensus.propose``),
* per-node vertex delivery (``rbc.e2e`` span ends) and block availability
  (``rbc.block_e2e``),
* per-node total-order placement (``consensus.ordered``),
* per-node execution (``smr.execute``),

plus the per-transaction endpoints: submission (``smr.submit``) and client
acceptance (``smr.client_latency``).  From these the module derives the
**critical path**: the client accepts on the ``f_c + 1``-th matching reply,
so the commit's effective latency is set by the quorum-th *fastest* executor
— the *critical replica*.  Anchoring every stage at that replica makes the
five segments telescope exactly:

``mempool + dissemination + ordering + execution + reply  ==  client latency``

which :func:`reconcile` checks per transaction.  Traces without clients
(synthetic workloads) still yield per-commit attribution over the
consensus-level segments (dissemination / ordering, commit-by-all-honest).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

#: Absolute tolerance for waterfall-vs-client-latency reconciliation: sums of
#: a handful of float subtractions that telescope algebraically.
RECONCILE_TOL = 1e-9

#: Critical-path segment names, in causal order.
CLIENT_SEGMENTS = ("mempool", "dissemination", "ordering", "execution", "reply")
CONSENSUS_SEGMENTS = ("dissemination", "ordering")


@dataclass
class Commit:
    """Everything the trace says about one committed block."""

    round: int
    proposer: int
    digest: str | None = None
    proposed_at: float | None = None
    txns: tuple[str, ...] = ()
    #: node → time the vertex RBC-delivered there.
    delivered: dict[int, float] = field(default_factory=dict)
    #: node → time the block body became available there.
    block_at: dict[int, float] = field(default_factory=dict)
    #: node → time the node placed the block in its total order.
    ordered: dict[int, float] = field(default_factory=dict)
    #: node → time the node executed the block (clan members only).
    executed: dict[int, float] = field(default_factory=dict)

    @property
    def key(self) -> tuple[int, int]:
        return (self.round, self.proposer)

    @property
    def label(self) -> str:
        if self.digest:
            return self.digest[:12]
        return f"r{self.round}:n{self.proposer}"

    def matches(self, ident: str) -> bool:
        """Does a CLI identifier (digest prefix or ``round:proposer``) name us?"""
        if self.digest and self.digest.startswith(ident):
            return True
        return ident in (f"{self.round}:{self.proposer}", f"r{self.round}:n{self.proposer}")

    def critical_replica(self, quorum: int) -> tuple[int, float] | None:
        """The quorum-th fastest executor: ``(node, executed_at)``."""
        if len(self.executed) < quorum or quorum < 1:
            return None
        ranked = sorted((t, n) for n, t in self.executed.items())
        t, n = ranked[quorum - 1]
        return n, t

    def segments(self, quorum: int | None = None) -> dict[str, float] | None:
        """Commit-level segment durations along the critical path.

        With a client quorum the path is anchored at the critical replica;
        without one it spans commit-by-all (max delivery / max ordering).
        Returns ``None`` when the trace lacks the needed records.
        """
        if self.proposed_at is None:
            return None
        if quorum is not None:
            crit = self.critical_replica(quorum)
            if crit is None:
                return None
            node, executed_at = crit
            ordered_at = self.ordered.get(node, executed_at)
            delivered_at = self.delivered.get(node, ordered_at)
            return {
                "dissemination": delivered_at - self.proposed_at,
                "ordering": ordered_at - delivered_at,
                "execution": executed_at - ordered_at,
            }
        if not self.ordered:
            return None
        last_ordered = max(self.ordered.values())
        last_delivered = (
            max(self.delivered.values()) if self.delivered else last_ordered
        )
        last_delivered = min(last_delivered, last_ordered)
        return {
            "dissemination": last_delivered - self.proposed_at,
            "ordering": last_ordered - last_delivered,
        }

    def slowest_node(self, quorum: int | None = None) -> int | None:
        """The replica that set the pace for this commit."""
        if quorum is not None:
            crit = self.critical_replica(quorum)
            return crit[0] if crit else None
        if not self.ordered:
            return None
        return max(self.ordered.items(), key=lambda kv: (kv[1], kv[0]))[0]


@dataclass
class TxnPath:
    """Per-transaction endpoints tied to the commit that carried it."""

    txn_id: str
    submitted_at: float | None = None
    accepted_at: float | None = None
    client_latency: float | None = None
    quorum: int | None = None
    commit_key: tuple[int, int] | None = None


class ProvenanceIndex:
    """All commits and transaction paths recovered from one trace."""

    def __init__(self) -> None:
        self.commits: dict[tuple[int, int], Commit] = {}
        self.txns: dict[str, TxnPath] = {}
        #: digest hex → commit key (filled as ordering records arrive).
        self._by_digest: dict[str, tuple[int, int]] = {}

    # -- construction helpers (one per record kind) -------------------------

    def _commit(self, round_: int, proposer: int) -> Commit:
        key = (round_, proposer)
        commit = self.commits.get(key)
        if commit is None:
            commit = self.commits[key] = Commit(round=round_, proposer=proposer)
        return commit

    def _txn(self, txn_id: str) -> TxnPath:
        txn = self.txns.get(txn_id)
        if txn is None:
            txn = self.txns[txn_id] = TxnPath(txn_id)
        return txn

    def _link_digest(self, digest: str, key: tuple[int, int]) -> None:
        self._by_digest.setdefault(digest, key)

    # -- queries ------------------------------------------------------------

    @property
    def has_clients(self) -> bool:
        return any(t.client_latency is not None for t in self.txns.values())

    def ordered_commits(self) -> list[Commit]:
        """Commits that at least one node placed in its total order."""
        return [
            self.commits[key]
            for key in sorted(self.commits)
            if self.commits[key].ordered
        ]

    def find(self, ident: str) -> Commit | None:
        for key in sorted(self.commits):
            if self.commits[key].matches(ident):
                return self.commits[key]
        return None

    def commit_of_txn(self, txn_id: str) -> Commit | None:
        txn = self.txns.get(txn_id)
        if txn is None or txn.commit_key is None:
            return None
        return self.commits.get(txn.commit_key)


def build_provenance(rows: Iterable[dict[str, Any]]) -> ProvenanceIndex:
    """One streaming pass over raw record dicts → a provenance index."""
    index = ProvenanceIndex()
    for row in rows:
        rtype = row.get("type")
        name = row.get("name")
        attrs = row.get("attrs") or {}
        if rtype == "counter":
            if name == "smr.block":
                commit = index._commit(attrs["round"], row["node"])
                commit.proposed_at = row["time"]
                commit.digest = attrs.get("digest")
                commit.txns = tuple(attrs.get("txns") or ())
                if commit.digest:
                    index._link_digest(commit.digest, commit.key)
                for txn_id in commit.txns:
                    index._txn(txn_id).commit_key = commit.key
            elif name == "consensus.propose" and attrs.get("has_block"):
                commit = index._commit(attrs["round"], row["node"])
                if commit.proposed_at is None:
                    commit.proposed_at = row["time"]
            elif name == "consensus.ordered":
                commit = index._commit(attrs["round"], attrs["source"])
                commit.ordered.setdefault(row["node"], row["time"])
                digest = attrs.get("digest")
                if digest:
                    commit.digest = commit.digest or digest
                    index._link_digest(digest, commit.key)
            elif name == "smr.execute":
                key = index._by_digest.get(attrs.get("digest"))
                if key is not None:
                    index.commits[key].executed.setdefault(
                        row["node"], row["time"]
                    )
            elif name == "smr.submit":
                index._txn(attrs["txn"]).submitted_at = row["time"]
            elif name == "smr.client_latency":
                txn = index._txn(attrs.get("txn", ""))
                txn.accepted_at = row["time"]
                txn.client_latency = row.get("value")
                txn.quorum = attrs.get("quorum")
        elif rtype == "span":
            if name == "rbc.e2e":
                commit = index._commit(attrs["round"], attrs["origin"])
                commit.delivered.setdefault(row["node"], row["end"])
            elif name == "rbc.block_e2e":
                commit = index._commit(attrs["round"], attrs["origin"])
                commit.block_at.setdefault(row["node"], row["end"])
    # Drop bookkeeping entries for vertices that never carried a block or
    # were never ordered (pure-DAG rounds, evicted heads of the ring).
    index.commits = {
        key: c
        for key, c in index.commits.items()
        if c.ordered and (c.digest or c.proposed_at is not None)
    }
    return index


# -- per-transaction waterfalls ----------------------------------------------


def txn_waterfall(index: ProvenanceIndex, txn: TxnPath) -> dict[str, Any] | None:
    """The five-segment critical path of one accepted transaction."""
    if txn.commit_key is None or txn.client_latency is None:
        return None
    commit = index.commits.get(txn.commit_key)
    if commit is None or txn.quorum is None or txn.submitted_at is None:
        return None
    crit = commit.critical_replica(txn.quorum)
    if crit is None or commit.proposed_at is None or txn.accepted_at is None:
        return None
    node, executed_at = crit
    ordered_at = commit.ordered.get(node, executed_at)
    delivered_at = commit.delivered.get(node, ordered_at)
    segments = {
        "mempool": commit.proposed_at - txn.submitted_at,
        "dissemination": delivered_at - commit.proposed_at,
        "ordering": ordered_at - delivered_at,
        "execution": executed_at - ordered_at,
        "reply": txn.accepted_at - executed_at,
    }
    total = sum(segments.values())
    return {
        "txn": txn.txn_id,
        "commit": commit.label,
        "critical_node": node,
        "segments": segments,
        "total": total,
        "client_latency": txn.client_latency,
        "residual": total - txn.client_latency,
    }


def reconcile(index: ProvenanceIndex) -> dict[str, Any]:
    """Check every accepted transaction's waterfall against client latency."""
    checked = 0
    failures: list[dict[str, Any]] = []
    skipped = 0
    for txn_id in sorted(index.txns):
        txn = index.txns[txn_id]
        if txn.client_latency is None:
            continue  # never accepted (run ended first): nothing to reconcile
        waterfall = txn_waterfall(index, txn)
        if waterfall is None:
            skipped += 1  # records evicted or incomplete
            continue
        checked += 1
        if abs(waterfall["residual"]) > RECONCILE_TOL:
            failures.append(waterfall)
    return {
        "checked": checked,
        "skipped": skipped,
        "failures": failures,
        "ok": not failures and (checked > 0 or skipped == 0),
    }


# -- aggregate attribution ----------------------------------------------------


def attribution_rows(index: ProvenanceIndex) -> list[dict[str, Any]]:
    """Per-segment latency statistics across all commits (or transactions).

    With clients in the trace, samples are per accepted transaction (the
    mempool segment is per-transaction by nature); without, per ordered
    commit over the consensus-level segments.  Each segment aggregates into
    a fixed-size log-bucket histogram: count/sum/mean/max stay exact while
    quantiles are bucket estimates, and memory no longer grows with the
    number of commits in the trace.
    """
    from ..obs.metrics import Histogram

    samples: dict[str, Histogram] = {}
    if index.has_clients:
        names = CLIENT_SEGMENTS
        for txn_id in sorted(index.txns):
            waterfall = txn_waterfall(index, index.txns[txn_id])
            if waterfall is None:
                continue
            for seg, dur in waterfall["segments"].items():
                samples.setdefault(seg, Histogram()).record(dur)
    else:
        names = CONSENSUS_SEGMENTS
        for commit in index.ordered_commits():
            segs = commit.segments()
            if segs is None:
                continue
            for seg, dur in segs.items():
                samples.setdefault(seg, Histogram()).record(dur)
    grand_total = sum(h.sum for h in samples.values()) or 1.0
    rows = []
    for seg in names:
        hist = samples.get(seg)
        if hist is None or not hist.count:
            rows.append(
                {
                    "segment": seg, "count": 0, "mean": 0.0, "p50": 0.0,
                    "p99": 0.0, "max": 0.0, "share": 0.0,
                }
            )
            continue
        rows.append(
            {
                "segment": seg,
                "count": hist.count,
                "mean": hist.sum / hist.count,
                "p50": hist.quantile(0.50),
                "p99": hist.quantile(0.99),
                "max": hist.max,
                "share": hist.sum / grand_total,
            }
        )
    return rows


def slowest_replicas(index: ProvenanceIndex) -> list[tuple[int, int]]:
    """``(node, commits-paced)`` — how often each replica set a commit's pace."""
    quorum = None
    if index.has_clients:
        quorums = [
            t.quorum for t in index.txns.values() if t.quorum is not None
        ]
        quorum = quorums[0] if quorums else None
    counts: dict[int, int] = {}
    for commit in index.ordered_commits():
        node = commit.slowest_node(quorum)
        if node is not None:
            counts[node] = counts.get(node, 0) + 1
    return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
