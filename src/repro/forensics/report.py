"""Forensics reports: waterfalls, attribution, anomalies — terminal and JSON.

``python -m repro forensics <trace.jsonl>`` drives everything here.  The
report is built from one streaming pass over the trace
(:class:`~repro.obs.tracer.TraceFile`), so it scales to traces that do not
fit in memory.  Exit status is part of the contract: non-zero when any
waterfall fails to reconcile with its measured client latency or when the
trace contains ``safety`` anomalies — CI can gate on the command alone.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from ..bench.reporting import format_table
from ..obs.tracer import TraceFile
from .provenance import (
    ProvenanceIndex,
    attribution_rows,
    build_provenance,
    reconcile,
    slowest_replicas,
    txn_waterfall,
)


def _ms(value: float) -> float:
    return round(value * 1e3, 3)


class Forensics:
    """A trace's provenance index plus its anomaly stream."""

    def __init__(
        self,
        index: ProvenanceIndex,
        anomalies: list[dict[str, Any]],
        meta: dict[str, Any] | None = None,
    ) -> None:
        self.index = index
        self.anomalies = anomalies
        self.meta = meta

    @property
    def safety_anomalies(self) -> list[dict[str, Any]]:
        return [a for a in self.anomalies if a.get("kind") == "safety"]

    def anomaly_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for anomaly in self.anomalies:
            counts[anomaly.get("kind", "info")] = (
                counts.get(anomaly.get("kind", "info"), 0) + 1
            )
        return counts


def build_forensics(source: str | Iterable[dict[str, Any]]) -> Forensics:
    """Build the report model from a trace path or an iterable of dicts."""
    meta = None
    if isinstance(source, str):
        source = TraceFile(source)
    if isinstance(source, TraceFile):
        meta = source.meta
    elif not isinstance(source, (list, tuple)):
        source = list(source)  # two passes below: must be re-iterable
    index = build_provenance(source)
    anomalies = [row for row in source if row.get("type") == "anomaly"]
    return Forensics(index, anomalies, meta)


# -- section builders ---------------------------------------------------------


def attribution_table(forensics: Forensics) -> list[dict[str, Any]]:
    return [
        {
            "segment": row["segment"],
            "samples": row["count"],
            "mean_ms": _ms(row["mean"]),
            "p50_ms": _ms(row["p50"]),
            "p99_ms": _ms(row["p99"]),
            "max_ms": _ms(row["max"]),
            "share_%": round(100.0 * row["share"], 1),
        }
        for row in attribution_rows(forensics.index)
    ]


def replica_table(forensics: Forensics) -> list[dict[str, Any]]:
    return [
        {"node": node, "commits_paced": count}
        for node, count in slowest_replicas(forensics.index)
    ]


def commit_table(forensics: Forensics, limit: int = 10) -> list[dict[str, Any]]:
    """The slowest commits, by critical-path total."""
    index = forensics.index
    quorum = None
    if index.has_clients:
        quorums = [t.quorum for t in index.txns.values() if t.quorum is not None]
        quorum = quorums[0] if quorums else None
    rows = []
    for commit in index.ordered_commits():
        segments = commit.segments(quorum)
        if segments is None:
            continue
        rows.append(
            {
                "commit": commit.label,
                "round": commit.round,
                "proposer": commit.proposer,
                "txns": len(commit.txns),
                "total_ms": _ms(sum(segments.values())),
                **{f"{name}_ms": _ms(dur) for name, dur in segments.items()},
            }
        )
    rows.sort(key=lambda r: -r["total_ms"])
    return rows[:limit]


def anomaly_table(forensics: Forensics) -> list[dict[str, Any]]:
    counts: dict[tuple[str, str], int] = {}
    for anomaly in forensics.anomalies:
        key = (anomaly.get("kind", "info"), anomaly.get("name", "?"))
        counts[key] = counts.get(key, 0) + 1
    return [
        {"kind": kind, "anomaly": name, "count": count}
        for (kind, name), count in sorted(counts.items())
    ]


def waterfall_report(forensics: Forensics, ident: str) -> str | None:
    """Terminal waterfall drill-down for one commit (or transaction id)."""
    index = forensics.index
    commit = index.find(ident)
    txn_ids: list[str] = []
    if commit is None:
        txn = index.txns.get(ident)
        if txn is None or txn.commit_key is None:
            return None
        commit = index.commits[txn.commit_key]
        txn_ids = [ident]
    if not txn_ids:
        txn_ids = [t for t in commit.txns if t in index.txns]
    lines = [
        f"Commit {commit.label}  (round {commit.round}, proposer "
        f"{commit.proposer}, {len(commit.txns)} txns)"
    ]
    if commit.proposed_at is not None:
        lines.append(f"  proposed at t={commit.proposed_at:.6f}")
    for label, stage in (
        ("vertex delivered", commit.delivered),
        ("block available", commit.block_at),
        ("ordered", commit.ordered),
        ("executed", commit.executed),
    ):
        if stage:
            first = min(stage.values())
            last = max(stage.values())
            lines.append(
                f"  {label:<16} {len(stage)} nodes, first t={first:.6f}, "
                f"last t={last:.6f}"
            )
    waterfalls = []
    for txn_id in txn_ids:
        waterfall = txn_waterfall(index, index.txns[txn_id])
        if waterfall is not None:
            waterfalls.append(waterfall)
    if waterfalls:
        total_width = 28
        reference = waterfalls[0]
        lines.append(
            f"  critical replica: node {reference['critical_node']} "
            f"(the quorum-setting executor)"
        )
        lines.append("  per-txn critical path (ms):")
        for waterfall in waterfalls:
            segments = waterfall["segments"]
            total = waterfall["total"] or 1.0
            lines.append(f"    {waterfall['txn']}:")
            for name, duration in segments.items():
                bar = "#" * max(0, round(total_width * duration / total))
                lines.append(
                    f"      {name:<14} {_ms(duration):>10.3f}  {bar}"
                )
            lines.append(
                f"      {'total':<14} {_ms(total):>10.3f}  "
                f"(client latency {_ms(waterfall['client_latency']):.3f}, "
                f"residual {waterfall['residual']:+.2e})"
            )
    return "\n".join(lines)


# -- whole-report rendering ---------------------------------------------------


def report_json(forensics: Forensics) -> dict[str, Any]:
    reconciliation = reconcile(forensics.index)
    return {
        "meta": forensics.meta,
        "commits": len(forensics.index.ordered_commits()),
        "attribution": attribution_table(forensics),
        "slowest_replicas": replica_table(forensics),
        "slowest_commits": commit_table(forensics),
        "anomalies": anomaly_table(forensics),
        "anomaly_records": forensics.anomalies,
        "reconciliation": {
            "checked": reconciliation["checked"],
            "skipped": reconciliation["skipped"],
            "ok": reconciliation["ok"],
            "failures": reconciliation["failures"][:10],
        },
    }


def format_report(
    forensics: Forensics,
    show_attribution: bool = True,
    show_anomalies: bool = True,
) -> str:
    sections: list[str] = []
    index = forensics.index
    commits = index.ordered_commits()
    head = f"Forensics: {len(commits)} committed blocks"
    if index.has_clients:
        accepted = sum(
            1 for t in index.txns.values() if t.client_latency is not None
        )
        head += f", {accepted} accepted txns"
    if forensics.meta and forensics.meta.get("dropped"):
        head += (
            f"\nWARNING: {forensics.meta['dropped']} trace records were "
            "evicted — provenance below is partial; raise --capacity."
        )
    sections.append(head)
    if show_attribution:
        attribution = attribution_table(forensics)
        if attribution:
            sections.append(
                format_table(
                    attribution, "Critical-path attribution (per segment)"
                )
            )
        replicas = replica_table(forensics)
        if replicas:
            sections.append(
                format_table(replicas, "Slowest replicas (commits paced)")
            )
        slowest = commit_table(forensics)
        if slowest:
            sections.append(format_table(slowest, "Slowest commits"))
        reconciliation = reconcile(index)
        if reconciliation["checked"] or reconciliation["skipped"]:
            status = "OK" if reconciliation["ok"] else "FAILED"
            sections.append(
                f"Reconciliation: {status} — {reconciliation['checked']} txn "
                f"waterfalls match client latency "
                f"(tolerance 1e-9); {reconciliation['skipped']} skipped "
                f"(incomplete records); {len(reconciliation['failures'])} failed"
            )
    if show_anomalies:
        anomalies = anomaly_table(forensics)
        if anomalies:
            sections.append(format_table(anomalies, "Anomalies"))
        else:
            sections.append("Anomalies: none recorded")
    return "\n\n".join(sections)


# -- CLI ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="forensics",
        description="Per-commit critical-path attribution and anomaly "
        "report for a repro JSONL trace",
    )
    parser.add_argument("trace", help="path to a trace.jsonl file")
    parser.add_argument(
        "--commit",
        metavar="ID",
        help="waterfall drill-down for one commit (digest prefix, "
        "round:proposer, or txn id)",
    )
    parser.add_argument(
        "--attribution",
        action="store_true",
        help="only the attribution sections",
    )
    parser.add_argument(
        "--anomalies", action="store_true", help="only the anomaly sections"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = parser.parse_args(argv)
    forensics = build_forensics(args.trace)
    if args.commit:
        report = waterfall_report(forensics, args.commit)
        if report is None:
            print(f"forensics: no commit or txn matches {args.commit!r}")
            return 2
        print(report)
        return 0
    if args.json:
        print(json.dumps(report_json(forensics), indent=2))
    else:
        show_attribution = args.attribution or not args.anomalies
        show_anomalies = args.anomalies or not args.attribution
        print(
            format_report(
                forensics,
                show_attribution=show_attribution,
                show_anomalies=show_anomalies,
            )
        )
    reconciliation = reconcile(forensics.index)
    if not reconciliation["ok"] or forensics.safety_anomalies:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests of main()
    raise SystemExit(main())
