"""Consensus forensics: critical-path attribution and online health monitors.

The package turns the :mod:`repro.obs` trace stream into answers to the two
questions every DAG-BFT performance claim hangs on:

* **Where does commit latency go?**  :mod:`~repro.forensics.provenance`
  reconstructs, for every committed block, the causal chain from mempool
  arrival through RBC dissemination, DAG ordering, and clan execution to the
  ``f_c + 1`` client reply quorum — and reconciles the per-segment waterfall
  against the end-to-end client latency the SMR runtime measures.
* **Is the protocol healthy right now?**  :mod:`~repro.forensics.monitors`
  attaches purely callback-driven observers (stall watchdog, commit-prefix
  safety, clan health, equivocation evidence) that emit typed ``anomaly``
  records during a run without scheduling a single simulator event, so an
  instrumented run stays bit-identical to a plain one.
* **What happened just before it went wrong?**
  :mod:`~repro.forensics.recorder` keeps a bounded per-node ring of recent
  protocol events and dumps a post-mortem bundle when a monitor fires or a
  node crashes.

``python -m repro forensics <trace.jsonl>`` is the CLI entry point
(:mod:`~repro.forensics.report`); ``python -m repro chaos --monitors`` runs
the scenario library with the monitor suite attached.
"""

from .monitors import MonitorConfig, MonitorSuite
from .provenance import (
    Commit,
    ProvenanceIndex,
    attribution_rows,
    build_provenance,
)
from .recorder import FlightRecorder
from .report import build_forensics, format_report, main

__all__ = [
    "Commit",
    "FlightRecorder",
    "MonitorConfig",
    "MonitorSuite",
    "ProvenanceIndex",
    "attribution_rows",
    "build_forensics",
    "build_provenance",
    "format_report",
    "main",
]
