"""The determinism / protocol-invariant rule pack.

Rule IDs are stable API — suppressions (``# repro: allow[DET003]``) and
baseline entries reference them.  Each rule is a heuristic AST check: it can
miss violations routed through aliases it cannot see, but everything it *does*
flag is either a real hazard or a line that deserves the one-line suppression
comment explaining why it is safe.  See ``docs/ANALYSIS.md`` for the
bad/good example pairs.

================  ==========================================================
DET001 (error)    raw ``random.*`` / ``random.Random`` outside ``sim/rng.py``
DET002 (error)    wall-clock / environment nondeterminism (``time.time``,
                  ``datetime.now``, ``os.urandom``, unseeded ``uuid``,
                  ``secrets``)
DET003 (warning)  iteration over bare ``set``/``frozenset``/``dict.keys()``
                  without ``sorted(...)``; escalates to *error* when the loop
                  body sends, schedules, or draws randomness
DET004 (error)    ``id()`` / ``hash()`` in comparisons or sort keys
MSG001 (error)    ``Message`` subclass missing ``__slots__`` or ``wire_size``
MSG002 (error)    assignment to a message's fields after it was passed to
                  ``send``/``multicast``/``broadcast`` in the same scope
SIM001 (warning)  float ``==`` / ``!=`` on simulated-time values
OBS001 (warning)  tracer emission inside a loop without an
                  ``if ...tracer.enabled:`` guard
DAG001 (warning)  full-round DAG scan (``round_vertices`` /
                  ``uncovered_before``) inside a per-item loop in
                  ``repro.dag`` / ``repro.consensus``
================  ==========================================================
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from .engine import FileContext, Finding, Rule


def _scope_nodes(ctx: FileContext) -> list[ast.AST]:
    """The module plus every function definition (analysis scopes)."""
    return [ctx.tree, *ctx.nodes(ast.FunctionDef, ast.AsyncFunctionDef)]


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope's own code without descending into nested scopes.

    Nested function/class definitions are yielded (so a rule can see that
    they exist) but not entered — each function body is analyzed as its own
    scope by :func:`_scope_nodes`.
    """
    stack: list[ast.AST] = list(scope.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _func_name(func: ast.AST) -> str | None:
    """Terminal name of a call target (``a.b.send`` → ``send``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class RawRandomRule:
    """DET001: all randomness must flow through ``repro.sim.rng`` streams.

    A bare ``random.random()`` (or a module-level ``random.Random(...)``)
    draws from interpreter-global state: any other component touching it
    perturbs every later draw, silently breaking replay determinism and the
    PR-3 result cache's serial == parallel guarantee.
    """

    rule_id = "DET001"
    severity = "error"
    summary = "raw random.* usage outside sim/rng.py"

    #: The one module allowed to touch ``random`` directly.
    EXEMPT_SUFFIXES = ("sim/rng.py",)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.path.endswith(self.EXEMPT_SUFFIXES):
            return
        for node in ctx.nodes(ast.ImportFrom):
            if node.module == "random" and not node.level:
                yield ctx.finding(
                    self,
                    node,
                    "import from the global `random` module; derive a stream "
                    "with repro.sim.rng.make_rng(seed, *labels) instead",
                )
        for node in ctx.nodes(ast.Attribute):
            if isinstance(node.value, ast.Name):
                dotted = ctx.dotted_name(node)
                if dotted is not None and dotted.split(".", 1)[0] == "random":
                    yield ctx.finding(
                        self,
                        node,
                        f"`{dotted}` uses the global random module; use "
                        "repro.sim.rng.make_rng(seed, *labels) named streams",
                    )


class WallClockRule:
    """DET002: no wall-clock or environment entropy on simulation paths.

    Simulated time comes from the scheduler (``sim.now``); wall-clock reads
    and OS entropy make two runs with identical seeds diverge.  (Profiling
    and tracing code may read ``time.perf_counter`` — wall-clock *spans*
    never feed back into simulated behaviour, so that name is not banned.)
    """

    rule_id = "DET002"
    severity = "error"
    summary = "wall-clock or environment nondeterminism"

    BANNED_SUFFIXES = (
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    )
    MODULES = frozenset({"time", "datetime", "os", "uuid", "secrets"})

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.nodes(ast.ImportFrom):
            if node.module == "secrets" and not node.level:
                yield ctx.finding(
                    self, node, "the `secrets` module is OS entropy; seed a "
                    "repro.sim.rng stream instead"
                )
        seen: set[int] = set()
        for node in ctx.nodes(ast.Attribute, ast.Name):
            if isinstance(node, ast.Name) and not isinstance(
                ctx.parent(node), ast.Call
            ):
                continue  # bare name references only matter when called
            dotted = ctx.dotted_name(node)
            if dotted is None:
                continue
            root = dotted.split(".", 1)[0]
            if root not in self.MODULES:
                continue
            if root == "secrets" or any(
                dotted.endswith(suffix) for suffix in self.BANNED_SUFFIXES
            ):
                # An Attribute chain resolves at every link; report once.
                key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
                if key in seen:
                    continue
                seen.add(key)
                yield ctx.finding(
                    self,
                    node,
                    f"`{dotted}` is nondeterministic (wall clock / OS entropy); "
                    "simulated time comes from sim.now, randomness from "
                    "repro.sim.rng streams",
                )


#: Call names that make an unordered iteration protocol-visible.
_ORDER_SINKS = frozenset(
    {
        "send",
        "multicast",
        "broadcast",
        "schedule",
        "schedule_at",
        "post",
        "start",
        "random",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "randint",
        "randrange",
        "uniform",
        "gauss",
    }
)


class UnsortedSetIterRule:
    """DET003: never iterate raw sets / dict keys on an order-sensitive path.

    ``set``/``frozenset`` iteration order depends on element hashes and
    insertion history; feeding it into sends, timers, or RNG draws makes the
    event order differ between runs (and between serial and parallel workers,
    poisoning the result cache).  Wrap the iterable in ``sorted(...)``.
    """

    rule_id = "DET003"
    severity = "warning"
    summary = "iteration over unordered set/frozenset/dict.keys()"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for scope in _scope_nodes(ctx):
            set_vars = self._set_assignments(scope)
            for node in _walk_scope(scope):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    reason = self._unordered_reason(node.iter, set_vars)
                    if reason is not None:
                        sink = self._body_sink(node.body)
                        yield self._finding(ctx, node.iter, reason, sink)
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    for gen in node.generators:
                        reason = self._unordered_reason(gen.iter, set_vars)
                        if reason is not None:
                            yield self._finding(ctx, gen.iter, reason, None)

    def _finding(
        self, ctx: FileContext, node: ast.AST, reason: str, sink: str | None
    ) -> Finding:
        if sink is not None:
            return ctx.finding(
                self,
                node,
                f"iteration over {reason} feeds `{sink}(...)` — event order "
                "becomes hash/insertion dependent; wrap in sorted(...)",
                severity="error",
            )
        return ctx.finding(
            self,
            node,
            f"iteration over {reason} has no deterministic order; wrap in "
            "sorted(...) if the order can ever become protocol-visible",
        )

    def _set_assignments(self, scope: ast.AST) -> set[str]:
        """Names assigned an (unsorted) set value within this scope."""
        set_vars: set[str] = set()
        assigns = sorted(
            (n for n in _walk_scope(scope) if isinstance(n, ast.Assign)),
            key=lambda n: (n.lineno, n.col_offset),
        )
        for node in assigns:
            if len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if self._is_set_expr(node.value):
                set_vars.add(target.id)
            else:
                set_vars.discard(target.id)  # reassigned to something ordered
        return set_vars

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return UnsortedSetIterRule._is_set_expr(
                node.left
            ) or UnsortedSetIterRule._is_set_expr(node.right)
        return False

    def _unordered_reason(self, iter_node: ast.AST, set_vars: set[str]) -> str | None:
        if isinstance(iter_node, ast.Call):
            name = _func_name(iter_node.func)
            if isinstance(iter_node.func, ast.Name) and name in ("set", "frozenset"):
                return f"a bare `{name}(...)`"
            if isinstance(iter_node.func, ast.Attribute) and name == "keys":
                return "`.keys()` of a dict"
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            return "a set literal/comprehension"
        if isinstance(iter_node, ast.Name) and iter_node.id in set_vars:
            return f"the set-valued variable `{iter_node.id}`"
        return None

    @staticmethod
    def _body_sink(body: list[ast.stmt]) -> str | None:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    name = _func_name(node.func)
                    if name in _ORDER_SINKS:
                        return name
        return None


class IdentityOrderRule:
    """DET004: ``id()`` / ``hash()`` must not decide comparisons or order.

    CPython object ids are allocation addresses and ``hash(str)`` is salted
    per process (PYTHONHASHSEED); both differ between runs and between
    parallel workers.  Sort keys and equality checks built on them are
    nondeterminism bombs.
    """

    rule_id = "DET004"
    severity = "error"
    summary = "id()/hash() in a comparison or sort key"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.nodes(ast.Call):
            if not (isinstance(node.func, ast.Name) and node.func.id in ("id", "hash")):
                continue
            context = self._ordering_context(ctx, node)
            if context is not None:
                yield ctx.finding(
                    self,
                    node,
                    f"`{node.func.id}(...)` used {context} — object identity "
                    "and salted hashes differ between runs; compare/sort on "
                    "stable protocol fields instead",
                )
        # ``key=id`` / ``key=hash`` passed without a call wrapper.
        for node in ctx.nodes(ast.keyword):
            if (
                node.arg == "key"
                and isinstance(node.value, ast.Name)
                and node.value.id in ("id", "hash")
            ):
                yield ctx.finding(
                    self,
                    node.value,
                    f"`key={node.value.id}` sorts by object identity/salted "
                    "hash; sort on stable protocol fields instead",
                )

    @staticmethod
    def _ordering_context(ctx: FileContext, node: ast.AST) -> str | None:
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.Compare):
                return "in a comparison"
            if isinstance(ancestor, ast.keyword) and ancestor.arg == "key":
                return "as a sort key"
            if isinstance(ancestor, ast.stmt):
                return None
        return None


class MessageShapeRule:
    """MSG001: every ``Message`` subclass declares ``__slots__`` + ``wire_size``.

    ``__slots__`` keeps per-message memory flat at millions of events and —
    with the freeze-after-send sanitizer — guarantees no stray attributes
    appear after serialization; ``wire_size`` keeps the bandwidth model's
    byte accounting honest (CONTRIBUTING.md).
    """

    rule_id = "MSG001"
    severity = "error"
    summary = "Message subclass missing __slots__ or wire_size"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.nodes(ast.ClassDef):
            if node.name == "Message" or not self._subclasses_message(node):
                continue
            if not self._has_slots(node):
                yield ctx.finding(
                    self,
                    node,
                    f"Message subclass `{node.name}` lacks __slots__ "
                    "(use @dataclass(slots=True) or an explicit __slots__)",
                )
            if not self._defines(node, "wire_size"):
                yield ctx.finding(
                    self,
                    node,
                    f"Message subclass `{node.name}` does not implement "
                    "wire_size(); the bandwidth model cannot charge for it",
                )

    @staticmethod
    def _subclasses_message(node: ast.ClassDef) -> bool:
        for base in node.bases:
            if isinstance(base, ast.Name) and base.id == "Message":
                return True
            if isinstance(base, ast.Attribute) and base.attr == "Message":
                return True
        return False

    @staticmethod
    def _has_slots(node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            if isinstance(deco, ast.Call) and _func_name(deco.func) == "dataclass":
                for kw in deco.keywords:
                    if (
                        kw.arg == "slots"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "__slots__":
                        return True
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if stmt.target.id == "__slots__":
                    return True
        return False

    @staticmethod
    def _defines(node: ast.ClassDef, name: str) -> bool:
        return any(
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name == name
            for stmt in node.body
        )


#: Call attribute names that hand a message to the network.
_SEND_NAMES = frozenset({"send", "multicast", "broadcast"})


class MutateAfterSendRule:
    """MSG002: a message handed to the network is frozen.

    The network schedules delivery *by reference* (zero-copy); mutating a
    field after ``send`` retroactively rewrites what every recipient will
    observe — and what the memoized wire size already charged.  The runtime
    twin of this rule is the freeze-after-send sanitizer
    (:mod:`repro.analysis.sanitizers`).
    """

    rule_id = "MSG002"
    severity = "error"
    summary = "message field assigned after send in the same scope"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for scope in _scope_nodes(ctx):
            sent: dict[str, int] = {}  # name → first send line
            rebinds: dict[str, list[int]] = {}  # name → rebinding lines
            mutations: list[tuple[ast.AST, str]] = []
            for node in _walk_scope(scope):
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if node.func.attr in _SEND_NAMES and node.args:
                        last = node.args[-1]
                        if isinstance(last, ast.Name):
                            line = getattr(node, "lineno", 0)
                            prev = sent.get(last.id)
                            if prev is None or line < prev:
                                sent[last.id] = line
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    for target in targets:
                        if isinstance(target, ast.Attribute) and isinstance(
                            target.value, ast.Name
                        ):
                            mutations.append((node, target.value.id))
                        elif isinstance(target, ast.Name) and isinstance(
                            node, ast.Assign
                        ):
                            rebinds.setdefault(target.id, []).append(
                                getattr(node, "lineno", 0)
                            )
            for node, name in mutations:
                send_line = sent.get(name)
                mut_line = getattr(node, "lineno", 0)
                if send_line is None or mut_line <= send_line:
                    continue
                # Rebinding the name to a fresh object between send and
                # assignment means the mutation targets the new message.
                if any(
                    send_line < line <= mut_line for line in rebinds.get(name, ())
                ):
                    continue
                yield ctx.finding(
                    self,
                    node,
                    f"`{name}` was handed to the network on line "
                    f"{send_line} and mutated afterwards; messages are "
                    "immutable once sent — build a new message instead",
                )


class SimTimeEqualityRule:
    """SIM001: simulated-time floats are never compared with ``==``.

    Event times are sums of float delays; two paths to "the same" instant
    differ in the last ulp, so ``==`` (and ``!=``) on them encodes a
    coincidence of rounding, not a protocol condition.  Compare with ``<=``
    ordering, or use :func:`repro.sim.times_close` for same-instant checks.
    """

    rule_id = "SIM001"
    severity = "warning"
    summary = "float ==/!= on simulated-time values"

    _TIMEY = re.compile(r"^_?now$|_time$|_at$|^deadline$")

    #: Where the tolerance helper itself lives — its internals are exempt.
    EXEMPT_SUFFIXES = ("sim/timers.py",)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.path.endswith(self.EXEMPT_SUFFIXES):
            return
        for node in ctx.nodes(ast.Compare):
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            timey = next(
                (name for name in map(self._time_name, operands) if name), None
            )
            if timey is None:
                continue
            # `x == None` style checks aren't float equality.
            if any(
                isinstance(o, ast.Constant) and o.value is None for o in operands
            ):
                continue
            yield ctx.finding(
                self,
                node,
                f"`==`/`!=` on simulated-time value `{timey}`; float event "
                "times accumulate rounding — use ordering comparisons or "
                "repro.sim.times_close(a, b) for same-instant checks",
            )

    @classmethod
    def _time_name(cls, node: ast.AST) -> str | None:
        name = None
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        if name is not None and cls._TIMEY.search(name):
            return name
        return None


#: Tracer emission methods; each call allocates a record (and an attrs dict).
_TRACER_EMITS = frozenset({"counter", "gauge", "span", "anomaly", "begin", "end"})


class UnguardedTracerRule:
    """OBS001: tracer emissions in loops hide behind ``tracer.enabled``.

    ``NullTracer`` makes an unguarded call *correct* but not free: argument
    evaluation still builds an attrs dict (and often formats a digest) per
    iteration, which is exactly the hot-loop overhead the ≤5 % tracing budget
    (``tests/obs/test_overhead.py``) exists to prevent.  The house idiom is::

        if self.tracer.enabled:
            self.tracer.counter(...)

    with the guard either around the call or hoisted outside the loop.
    """

    rule_id = "OBS001"
    severity = "warning"
    summary = "unguarded tracer emission inside a loop"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.nodes(ast.Call):
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in _TRACER_EMITS:
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if len(parts) < 2 or parts[-2] not in ("tracer", "_tracer"):
                continue
            in_loop = False
            guarded = False
            for ancestor in ctx.ancestors(node):
                if isinstance(ancestor, (ast.For, ast.AsyncFor, ast.While)):
                    in_loop = True
                elif isinstance(ancestor, ast.If) and self._tests_enabled(
                    ancestor.test
                ):
                    guarded = True
                elif isinstance(
                    ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    break
            if in_loop and not guarded:
                yield ctx.finding(
                    self,
                    node,
                    f"`{dotted}(...)` runs inside a loop without an "
                    "`if ...tracer.enabled:` guard; even with tracing off it "
                    "builds an attrs dict every iteration — guard the call or "
                    "hoist the guard outside the loop",
                )

    @staticmethod
    def _tests_enabled(test: ast.AST) -> bool:
        for sub in ast.walk(test):
            if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
                return True
            if isinstance(sub, ast.Name) and sub.id == "enabled":
                return True
        return False


class UnbalancedSpanRule:
    """OBS002: a keyed span ``begin`` whose handler never ``end``s it.

    ``Tracer.begin(name, key)`` opens a pending keyed span that only becomes
    a record when the matching ``Tracer.end(name, key)`` fires.  A handler
    that opens a span but has no reachable ``end`` for the same span name
    leaks the pending entry and silently loses the span from every report
    and export.  Spans that intentionally close in a *different* handler
    should carry a ``# repro: allow[OBS002]`` suppression naming the
    closing site.
    """

    rule_id = "OBS002"
    severity = "warning"
    summary = "span begin without a matching end in the same handler"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        begins: dict[ast.AST | None, list[tuple[ast.Call, str, str]]] = {}
        ends: dict[ast.AST | None, set[str]] = {}
        for node in ctx.nodes(ast.Call):
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in ("begin", "end"):
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if len(parts) < 2 or parts[-2] not in ("tracer", "_tracer"):
                continue
            name = self._span_name(node)
            if name is None:
                continue  # dynamic span names can't be matched statically
            scope = self._enclosing_function(ctx, node)
            if node.func.attr == "begin":
                begins.setdefault(scope, []).append((node, name, dotted))
            else:
                ends.setdefault(scope, set()).add(name)
        for scope, opened in begins.items():
            closed = ends.get(scope, set())
            for node, name, dotted in opened:
                if name in closed:
                    continue
                yield ctx.finding(
                    self,
                    node,
                    f"`{dotted}(\"{name}\", ...)` opens a keyed span but no "
                    f"`end(\"{name}\", ...)` is reachable in the same "
                    "handler; the pending span never materializes — close it "
                    "on every path or suppress with `# repro: allow[OBS002]` "
                    "naming the closing handler",
                )

    @staticmethod
    def _span_name(call: ast.Call) -> str | None:
        if call.args and isinstance(call.args[0], ast.Constant) and isinstance(
            call.args[0].value, str
        ):
            return call.args[0].value
        for kw in call.keywords:
            if (
                kw.arg == "name"
                and isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, str)
            ):
                return kw.value.value
        return None

    @staticmethod
    def _enclosing_function(ctx: FileContext, node: ast.AST) -> ast.AST | None:
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None


#: DagStore methods that materialize a whole round's vertex dict per call.
_ROUND_SCANS = frozenset({"round_vertices", "uncovered_before"})


class RoundScanInLoopRule:
    """DAG001: no full-round DAG scans inside per-item loops.

    ``DagStore.round_vertices`` / ``uncovered_before`` materialize a list of
    O(n) vertices per call.  Called once per round they are fine (that is
    their job); called inside a loop over vertices/messages they silently
    turn an O(n) pass into O(n²) — the per-round quadratic work the bitmap
    edge store exists to avoid.  Hoist the scan out of the loop, or use the
    store's mask-based queries (``num_in_round``, ``strong_path_exists``,
    ``causal_history``) that answer without materializing the round.

    Loops over ``range(...)`` are exempt: iterating *rounds* and scanning
    each once is the intended batch pattern (sync serves round batches that
    way).  Scoped to ``repro/dag`` and ``repro/consensus`` — the layers that
    touch the store on the simulation hot path.
    """

    rule_id = "DAG001"
    severity = "warning"
    summary = "full-round DAG scan inside a per-item loop"

    _PATHS = ("repro/dag/", "repro/consensus/")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        normalized = ctx.path.replace("\\", "/")
        if not any(part in normalized for part in self._PATHS):
            return
        for node in ctx.nodes(ast.Call):
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in _ROUND_SCANS:
                continue
            in_item_loop = False
            for ancestor in ctx.ancestors(node):
                if isinstance(ancestor, (ast.For, ast.AsyncFor)):
                    # A scan in the loop's *iterable* runs once, before the
                    # loop body; only body/else placement repeats per item.
                    if self._within(ancestor.iter, node):
                        continue
                    if not self._iterates_range(ancestor):
                        in_item_loop = True
                elif isinstance(ancestor, ast.While):
                    in_item_loop = True
                elif isinstance(
                    ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    break
            if in_item_loop:
                yield ctx.finding(
                    self,
                    node,
                    f"`{node.func.attr}(...)` materializes a whole round's "
                    "vertices on every iteration of the enclosing loop "
                    "(O(n) per item -> O(n²) per pass); hoist the scan "
                    "out of the loop or use the store's mask-based queries",
                )

    @staticmethod
    def _within(subtree: ast.AST, node: ast.AST) -> bool:
        return any(child is node for child in ast.walk(subtree))

    @staticmethod
    def _iterates_range(loop: ast.For | ast.AsyncFor) -> bool:
        iter_ = loop.iter
        return (
            isinstance(iter_, ast.Call)
            and isinstance(iter_.func, ast.Name)
            and iter_.func.id == "range"
        )


def default_rules() -> list[Rule]:
    """The shipped rule pack, in rule-id order.

    Includes the interprocedural pack (:mod:`repro.analysis.flow_rules`);
    those rules carry ``requires_project = True`` and are skipped by the
    engine unless the analyzer holds a
    :class:`~repro.analysis.project.ProjectContext`.
    """
    from .flow_rules import flow_rules

    return [
        RawRandomRule(),
        WallClockRule(),
        UnsortedSetIterRule(),
        IdentityOrderRule(),
        *flow_rules(),
        MessageShapeRule(),
        MutateAfterSendRule(),
        SimTimeEqualityRule(),
        UnguardedTracerRule(),
        UnbalancedSpanRule(),
        RoundScanInLoopRule(),
    ]
