"""Opt-in runtime sanitizers, the dynamic twin of ``python -m repro analyze``.

Enabled by ``REPRO_SANITIZE=1`` in the environment; when the variable is
unset nothing here is instantiated — the hooks in the scheduler, network,
and RNG layers reduce to a single ``is None`` check, so production and
benchmark runs pay nothing.

Three sanitizers ship:

* **Freeze-after-send** (:class:`FreezeGuard`) — the network digests every
  message as it is handed over and re-checks the digest at each delivery
  (and at every retransmission of the same object).  Because delivery is
  zero-copy by reference, a post-send mutation would silently rewrite what
  recipients observe; the guard turns that into a hard
  :class:`~repro.errors.SanitizerError` at the exact delivery that would
  have seen torn state.
* **RNG stream-collision detection** (:func:`note_stream`) — errors when two
  components derive :func:`repro.sim.rng.make_rng` streams with identical
  ``(master_seed, labels)`` in the same run: shared streams mean one
  component's draws perturb another's, the exact coupling named streams
  exist to prevent.  Streams that are *intentionally* common knowledge
  (e.g. the leader-schedule beacon every node re-derives) are declared with
  ``make_rng(..., shared=True)`` and exempted — but deriving the same labels
  both shared and exclusive is still an error.
* **Scheduler tie-order audit** (:class:`TieAudit`) — records events
  scheduled at identical simulated times.  Ties are broken by insertion
  sequence number, which is deterministic only because insertion order is;
  the audit surfaces *mixed* ties (different callbacks racing at one
  instant) and a running order digest so two runs can be compared.

Run scoping: :func:`begin_run` is called by ``Simulator.__init__`` (one
simulator = one run), clearing the stream registry so sequential runs in one
process don't cross-talk.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict

from ..errors import SanitizerError


def enabled() -> bool:
    """Whether runtime sanitizers are switched on (``REPRO_SANITIZE=1``).

    Read at object-construction time (Simulator/Network creation), not
    process start, so tests can toggle it with ``monkeypatch.setenv``.
    """
    return os.environ.get("REPRO_SANITIZE") == "1"


# -- freeze-after-send --------------------------------------------------------


def message_digest(msg: object) -> bytes:
    """Content digest of a message.

    Every message class is a ``slots`` dataclass, so ``repr`` covers exactly
    the declared fields (recursively, through wrapped payloads) and excludes
    bookkeeping like the memoized wire size — which is the one attribute the
    network itself writes after send.
    """
    return hashlib.sha256(repr(msg).encode("utf-8", "backslashreplace")).digest()


class FreezeGuard:
    """Digests messages at send; re-checks at delivery and retransmission.

    Entries are keyed by object identity *and* hold a strong reference to
    the message, so an id can never be reused while its entry is alive.  The
    table is an LRU capped at ``cap`` entries: messages whose deliveries all
    happened ages ago (or were dropped by the fault model) age out instead
    of leaking.
    """

    __slots__ = ("_entries", "_cap", "checks", "violations_seen")

    def __init__(self, cap: int = 65536) -> None:
        #: id(msg) → (msg, digest-at-send)
        self._entries: OrderedDict[int, tuple[object, bytes]] = OrderedDict()
        self._cap = cap
        #: Digest re-checks performed (observability for tests/reports).
        self.checks = 0
        #: Violations raised (sticky count, survives the raised exception).
        self.violations_seen = 0

    def __len__(self) -> int:
        return len(self._entries)

    def on_send(self, msg: object) -> None:
        """Record (or re-verify) a message as it is handed to the network."""
        key = id(msg)
        entry = self._entries.get(key)
        if entry is not None and entry[0] is msg:
            # Same object sent again (multicast fan-out or retransmission):
            # it must not have changed since the first send.
            self._check(msg, entry[1], "retransmission/fan-out")
            self._entries.move_to_end(key)
            return
        self._entries[key] = (msg, message_digest(msg))
        self._entries.move_to_end(key)
        if len(self._entries) > self._cap:
            self._entries.popitem(last=False)

    def on_deliver(self, msg: object) -> None:
        """Re-verify a message as it reaches a handler."""
        entry = self._entries.get(id(msg))
        if entry is None or entry[0] is not msg:
            return  # aged out of the LRU, or a loopback the network skipped
        self._check(msg, entry[1], "delivery")

    def _check(self, msg: object, expect: bytes, stage: str) -> None:
        self.checks += 1
        if message_digest(msg) != expect:
            self.violations_seen += 1
            raise SanitizerError(
                f"freeze-after-send violation at {stage}: "
                f"{type(msg).__name__} was mutated after being handed to the "
                f"network (current state: {msg!r})"
            )


# -- RNG stream-collision detection -------------------------------------------

#: Streams derived since the last :func:`begin_run`, exclusive vs shared.
_exclusive_streams: set[tuple] = set()
_shared_streams: set[tuple] = set()


def _stream_key(master_seed: int, labels: tuple) -> tuple:
    return (master_seed, tuple(str(label) for label in labels))


def note_stream(master_seed: int, labels: tuple, shared: bool = False) -> None:
    """Record a stream derivation; raise on a collision.

    A *collision* is two derivations of the same ``(master_seed, labels)``
    in one run without ``shared=True`` — two components would then consume
    the same deterministic sequence, coupling their behaviour.
    """
    key = _stream_key(master_seed, labels)
    if shared:
        if key in _exclusive_streams:
            raise SanitizerError(
                f"RNG stream {key[1]} (seed {master_seed}) derived both "
                "shared and exclusive; pick one contract for the label"
            )
        _shared_streams.add(key)
        return
    if key in _shared_streams:
        raise SanitizerError(
            f"RNG stream {key[1]} (seed {master_seed}) derived both "
            "shared and exclusive; pick one contract for the label"
        )
    if key in _exclusive_streams:
        raise SanitizerError(
            f"RNG stream collision: {key[1]} (seed {master_seed}) derived "
            "twice in one run — two components are consuming the same "
            "stream; add a distinguishing label, or pass shared=True if the "
            "stream is intentionally common knowledge"
        )
    _exclusive_streams.add(key)


def begin_run() -> None:
    """Reset the stream registry at a run boundary (new ``Simulator``)."""
    _exclusive_streams.clear()
    _shared_streams.clear()


def stream_count() -> int:
    """Streams registered since the last run boundary (for tests)."""
    return len(_exclusive_streams) + len(_shared_streams)


def observed_streams() -> list[tuple[tuple[str, ...], bool]]:
    """Every stream derived since the last run boundary, as
    ``(labels, shared)`` pairs — the runtime inventory RNG001's static
    inventory is cross-checked against (``tests/analysis``)."""
    return sorted(
        [(labels, False) for _seed, labels in _exclusive_streams]
        + [(labels, True) for _seed, labels in _shared_streams]
    )


# -- scheduler tie-order audit ------------------------------------------------


class TieAudit:
    """Records events scheduled at identical simulated instants.

    The scheduler breaks (time) ties with a monotone sequence number, i.e.
    insertion order.  That is deterministic *only because* everything that
    inserts is; this audit makes the dependency visible.  ``mixed_ties``
    lists instants where *different* callbacks were scheduled at the same
    time — the cases whose relative order is purely insertion-dependent —
    and :meth:`order_digest` folds every (time, callback) pair into a hash
    two runs can compare for bit-identical schedules.

    Memory is bounded: the per-instant table is an LRU over ``max_groups``
    distinct times (ties land close together, old instants can't gain new
    members once simulated time has passed them).
    """

    __slots__ = ("_groups", "_max_groups", "_max_examples", "tie_events", "mixed_ties", "_digest")

    def __init__(self, max_groups: int = 4096, max_examples: int = 32) -> None:
        #: when → callback names scheduled at that instant, insertion order.
        self._groups: OrderedDict[float, list[str]] = OrderedDict()
        self._max_groups = max_groups
        self._max_examples = max_examples
        #: Events that landed on an already-used instant.
        self.tie_events = 0
        #: Example (when, callbacks) tuples with ≥ 2 distinct callbacks.
        self.mixed_ties: list[tuple[float, tuple[str, ...]]] = []
        self._digest = hashlib.sha256()

    def note(self, when: float, fn: object) -> None:
        name = getattr(fn, "__qualname__", None) or type(fn).__name__
        self._digest.update(f"{when!r}:{name}\n".encode())
        group = self._groups.get(when)
        if group is None:
            self._groups[when] = [name]
            if len(self._groups) > self._max_groups:
                self._groups.popitem(last=False)
            return
        group.append(name)
        self.tie_events += 1
        if name != group[0] and len(self.mixed_ties) < self._max_examples:
            self.mixed_ties.append((when, tuple(group)))

    def order_digest(self) -> str:
        """Hex digest over every (time, callback) scheduled so far; equal
        digests ⇒ the two runs scheduled identical events in identical
        order."""
        return self._digest.hexdigest()

    def report(self) -> dict:
        return {
            "tie_events": self.tie_events,
            "mixed_tie_examples": [
                {"time": when, "callbacks": list(names)}
                for when, names in self.mixed_ties
            ],
            "order_digest": self.order_digest(),
        }
