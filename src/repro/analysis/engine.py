"""AST rule engine behind ``python -m repro analyze``.

The reproduction rests on invariants no generic linter checks: all randomness
flows through :mod:`repro.sim.rng` named streams, messages are immutable once
handed to the network, and nothing on a protocol path may depend on set/dict
iteration order or ``id()``.  This module is the machinery; the rules
themselves live in :mod:`repro.analysis.rules`.

Design:

* Each file is parsed **once** into a :class:`FileContext` (source lines,
  AST with parent links, nodes bucketed by type, import-alias table).  Rules
  receive the context and yield :class:`Finding`s — no per-rule re-parsing.
* A finding on a line carrying ``# repro: allow[RULE]`` (or ``allow[*]``) is
  suppressed at collection time; suppressions are counted so reports can say
  how much is being waved through.
* A committed **baseline** file grandfathers known findings.  Baseline keys
  are ``(rule, path, stripped-source-line)`` rather than line numbers, so
  unrelated edits don't invalidate entries; each entry carries a mandatory
  ``justification`` string.  ``analyze`` fails only on *new* findings and
  reports stale baseline entries so the file shrinks over time.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass
from typing import Iterable, Iterator, Protocol, runtime_checkable

from ..errors import ConfigError

#: Ordered from most to least severe; both levels gate the exit code.
SEVERITIES = ("error", "warning")

#: Directory names never descended into (``scripts/__pycache__`` and
#: ``benchmarks/__pycache__`` are the usual offenders when analyzing a
#: whole checkout — byte-compiled caches are not source).
SKIP_DIRS = frozenset({"__pycache__", ".git", ".pytest_cache", ".ruff_cache"})

#: Marker that introduces an inline suppression comment.
_ALLOW_MARKER = "# repro: allow["


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str  # repo-relative, posix separators
    line: int
    col: int
    message: str
    #: The stripped source line — the stable part of the baseline key.
    snippet: str

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.snippet)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }


class FileContext:
    """Everything a rule needs about one parsed file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self._parents: dict[ast.AST, ast.AST] = {}
        self._by_type: dict[type, list[ast.AST]] = {}
        for parent in ast.walk(tree):
            bucket = self._by_type.setdefault(type(parent), [])
            bucket.append(parent)
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.import_aliases = self._collect_imports()

    def _collect_imports(self) -> dict[str, str]:
        """Local name → dotted imported name (``import time as _time`` →
        ``{"_time": "time"}``; ``from datetime import datetime`` →
        ``{"datetime": "datetime.datetime"}``)."""
        aliases: dict[str, str] = {}
        for node in self.nodes(ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    # ``import os.path`` binds ``os``.
                    root = alias.name.split(".", 1)[0]
                    aliases[root] = root
        for node in self.nodes(ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports are package-internal
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        return aliases

    def nodes(self, *types: type) -> list[ast.AST]:
        """All nodes of exactly these AST types, in source order."""
        out: list[ast.AST] = []
        for t in types:
            out.extend(self._by_type.get(t, ()))
        if len(types) > 1:
            out.sort(key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0)))
        return out

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Parents from nearest outwards, up to the module."""
        cur = self._parents.get(node)
        while cur is not None:
            yield cur
            cur = self._parents.get(cur)

    def dotted_name(self, node: ast.AST) -> str | None:
        """Resolve an ``a.b.c`` Name/Attribute chain through import aliases.

        Returns ``None`` when the chain is not rooted in a plain name (e.g.
        a call result or subscript).
        """
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        root = self.import_aliases.get(cur.id, cur.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def snippet(self, line: int) -> str:
        if 0 < line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def statement_lines(self, line: int) -> range:
        """All lines of the smallest statement covering ``line``.

        For compound statements (``for``/``if``/``def``/...) only the
        *header* lines count — an ``allow[...]`` comment inside a function
        body must not blanket the whole function.  Used so a suppression on
        any physical line of a multi-line statement applies to findings
        anchored on its first line.
        """
        best: tuple[int, int] | None = None
        for start, end in self._statement_spans():
            if start <= line <= end:
                if best is None or (end - start, -start) < (
                    best[1] - best[0],
                    -best[0],
                ):
                    best = (start, end)
        if best is None:
            return range(line, line + 1)
        return range(best[0], best[1] + 1)

    def _statement_spans(self) -> list[tuple[int, int]]:
        spans = getattr(self, "_spans", None)
        if spans is None:
            spans = []
            for node in ast.walk(self.tree):
                if not isinstance(node, ast.stmt):
                    continue
                start = node.lineno
                end = getattr(node, "end_lineno", None) or start
                body = getattr(node, "body", None)
                if isinstance(body, list) and body:
                    first = getattr(body[0], "lineno", start)
                    end = min(end, max(start, first - 1))
                spans.append((start, end))
            self._spans = spans
        return spans

    def finding(
        self, rule: "Rule", node: ast.AST, message: str, severity: str | None = None
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=rule.rule_id,
            severity=severity or rule.severity,
            path=self.path,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            snippet=self.snippet(line),
        )


@runtime_checkable
class Rule(Protocol):
    """One mechanically checkable protocol invariant.

    Implementations are stateless: :meth:`check` receives a fully prepared
    :class:`FileContext` and yields findings for that file only.
    """

    rule_id: str
    severity: str
    summary: str

    def check(self, ctx: FileContext) -> Iterable[Finding]: ...


def _allowed_rules(line: str) -> frozenset[str] | None:
    """Parse the ``# repro: allow[DET001,MSG002]`` suppression on a line."""
    idx = line.find(_ALLOW_MARKER)
    if idx < 0:
        return None
    rest = line[idx + len(_ALLOW_MARKER):]
    end = rest.find("]")
    if end < 0:
        return None
    names = frozenset(part.strip() for part in rest[:end].split(",") if part.strip())
    return names or None


class Analyzer:
    """Runs a rule pack over files and directories."""

    def __init__(self, rules: Iterable[Rule] | None = None, project=None) -> None:
        if rules is None:
            from .rules import default_rules

            rules = default_rules()
        self.rules: list[Rule] = list(rules)
        #: Whole-program context (:class:`repro.analysis.project.ProjectContext`).
        #: Rules with ``requires_project = True`` are skipped when ``None``.
        self.project = project
        #: Suppressions honoured during the last run (for reporting).
        self.suppressed = 0
        #: Files analyzed during the last run.
        self.files_analyzed = 0
        #: Files that failed to parse: list of (path, error message).
        self.parse_errors: list[tuple[str, str]] = []

    def analyze_source(self, source: str, path: str = "<memory>") -> list[Finding]:
        """Analyze one source string (the unit-test entry point)."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.parse_errors.append((path, str(exc)))
            return []
        ctx = FileContext(path, source, tree)
        findings: list[Finding] = []
        for rule in self.rules:
            if getattr(rule, "requires_project", False):
                if self.project is None:
                    continue  # interprocedural rules need the whole program
                findings.extend(rule.check(ctx, self.project))
            else:
                findings.extend(rule.check(ctx))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return self._apply_suppressions(ctx, findings)

    def _apply_suppressions(
        self, ctx: FileContext, findings: list[Finding]
    ) -> list[Finding]:
        kept: list[Finding] = []
        for finding in findings:
            # An allow comment on any physical line of the (multi-line)
            # statement counts, not just the line the finding anchors to.
            if any(
                (allowed := _allowed_rules(ctx.snippet(line) or ""))
                and (finding.rule in allowed or "*" in allowed)
                for line in ctx.statement_lines(finding.line)
            ):
                self.suppressed += 1
                continue
            kept.append(finding)
        return kept

    def analyze_file(self, filepath: str, rel: str | None = None) -> list[Finding]:
        rel = rel if rel is not None else filepath
        with open(filepath, encoding="utf-8") as fh:
            source = fh.read()
        self.files_analyzed += 1
        return self.analyze_source(source, path=rel.replace(os.sep, "/"))

    def run(self, paths: Iterable[str], root: str | None = None) -> list[Finding]:
        """Analyze files and directory trees; paths are reported relative to
        ``root`` (default: the current directory)."""
        root = os.path.abspath(root or os.getcwd())
        findings: list[Finding] = []
        for path in paths:
            full = path if os.path.isabs(path) else os.path.join(root, path)
            if os.path.isfile(full):
                findings.extend(self.analyze_file(full, os.path.relpath(full, root)))
                continue
            if not os.path.isdir(full):
                raise ConfigError(f"analyze target {path!r} does not exist")
            # Sorting dirnames in place both prunes skipped dirs and makes
            # os.walk's traversal order deterministic (it recurses in
            # dirnames order); sorting the walk generator itself would
            # consume it before the pruning could take effect.
            for dirpath, dirnames, filenames in os.walk(full):
                dirnames[:] = sorted(d for d in dirnames if d not in SKIP_DIRS)
                for name in sorted(filenames):
                    if not name.endswith(".py"):
                        continue
                    filepath = os.path.join(dirpath, name)
                    findings.extend(
                        self.analyze_file(filepath, os.path.relpath(filepath, root))
                    )
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings


# -- baseline -----------------------------------------------------------------


def load_baseline(path: str) -> dict[tuple[str, str, str], int]:
    """Load a baseline file into ``key → grandfathered count``."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "findings" not in data:
        raise ConfigError(f"baseline {path!r} is not a repro-analyze baseline")
    counts: dict[tuple[str, str, str], int] = {}
    for entry in data["findings"]:
        key = (entry["rule"], entry["path"], entry["snippet"])
        counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
    return counts


def write_baseline(findings: Iterable[Finding], path: str) -> None:
    """Write the current findings as a baseline (justifications start empty
    and are meant to be filled in by hand before committing)."""
    counts: dict[tuple[str, str, str], int] = {}
    for finding in findings:
        counts[finding.baseline_key] = counts.get(finding.baseline_key, 0) + 1
    entries = [
        {
            "rule": rule,
            "path": file_path,
            "snippet": snippet,
            "count": count,
            "justification": "",
        }
        for (rule, file_path, snippet), count in sorted(counts.items())
    ]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"version": 1, "findings": entries}, fh, indent=2)
        fh.write("\n")


@dataclass(frozen=True)
class BaselineSplit:
    """Findings partitioned against a baseline."""

    new: tuple[Finding, ...]
    baselined: tuple[Finding, ...]
    #: Baseline keys whose grandfathered count exceeded current findings —
    #: the entry can be shrunk or deleted.
    stale: tuple[tuple[str, str, str], ...]


def apply_baseline(
    findings: Iterable[Finding], baseline: dict[tuple[str, str, str], int]
) -> BaselineSplit:
    remaining = dict(baseline)
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in findings:
        key = finding.baseline_key
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    stale = tuple(key for key, count in sorted(remaining.items()) if count > 0)
    return BaselineSplit(tuple(new), tuple(grandfathered), stale)
