"""Interprocedural protocol-flow rules (require a :class:`ProjectContext`).

These rules check invariants that span modules: quorum thresholds must flow
from their canonical derivations, ``make_rng`` stream labels must be
collision-free program-wide, every constructed message must have a reachable
handler, and unordered iteration must not reach an ordering sink through the
call graph.  They run only when the analyzer was given a whole-program
context (``python -m repro analyze`` always builds one; single-source unit
runs without one simply skip them).

================  ==========================================================
QRM001 (error)    quorum threshold re-derived (``2f+1``, ``f+1``, ``n-f``,
                  majority ``(x+1)//2``, magic literals vs vote counts) in
                  ``rbc/``/``consensus/``/``dag/`` instead of flowing from
                  ``types.quorum_size``/``max_faults`` or the
                  ``Membership``/``ClanConfig`` properties
RNG001 (error)    static ``make_rng`` stream inventory: colliding constant
                  labels between non-``shared`` sites; dynamic first labels
                  that escape resolution (warning); label-less streams
MSG003 (error)    ``Message`` subclass constructed with no handler reachable
                  via ``Network.register``/``set_dispatch``; handler reads a
                  field the class does not declare
DET005 (error)    unordered set/dict iteration whose body calls a function
                  that reaches a ``send``/``schedule``/RNG sink through the
                  call graph (the interprocedural half of DET003)
================  ==========================================================
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from .engine import FileContext, Finding
from .project import ORDER_SINKS, ProjectContext, RngSite, rng_sites_in
from .rules import UnsortedSetIterRule, _func_name, _scope_nodes, _walk_scope

#: Path fragments where quorum arithmetic is protocol-critical.
_PROTOCOL_PATHS = ("repro/rbc/", "repro/consensus/", "repro/dag/")


def _enclosing_function(ctx: FileContext, node: ast.AST) -> str | None:
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor.name
    return None


class QuorumDerivationRule:
    """QRM001: thresholds flow from the canonical helpers, never re-derived.

    The tribe/clan safety argument (paper §4–5) is threshold algebra:
    ``quorum_size`` guarantees intersection-in-honesty, ``f_c+1`` guarantees
    one honest responder.  A hand-written ``2*f+1`` that drifts from the
    canonical formula (say the clan variant's ``(n_c+1)//2``) is a silent
    safety bug — so on protocol paths the *only* place the arithmetic may
    appear is the helpers themselves (``types.py``, ``committees/config.py``,
    ``rbc/base.py``); everything else calls them.
    """

    rule_id = "QRM001"
    severity = "error"
    summary = "quorum threshold re-derived outside the canonical helpers"
    requires_project = True

    _FAULTY = re.compile(r"^(f|f_c|fc|t)$|^(max_)?faults?$")
    _FAULT_CALLS = frozenset({"max_faults", "clan_max_faults", "clan_faults"})
    _SIZEY = re.compile(r"^(n|n_c|nc)$|^num_|_size$|^size$|^total$|^members$")
    #: Collections whose ``len(...)`` is a party count (``(len(xs)+1)//2``
    #: on an arbitrary list is the midpoint idiom, not a majority).
    _MEMBERY = re.compile(
        r"clan|member|node|peer|part(y|ies)|committee|tribe|replica|"
        r"validator|proposer",
        re.IGNORECASE,
    )
    _COUNTY = re.compile(
        r"vote|supporter|echo|read(y|ies)|signer|signature|voter|ack|replie|"
        r"reply|tally|cert|response",
        re.IGNORECASE,
    )

    def check(self, ctx: FileContext, project: ProjectContext) -> Iterable[Finding]:
        normalized = ctx.path.replace("\\", "/")
        if not any(part in normalized for part in _PROTOCOL_PATHS):
            return
        reported: set[int] = set()
        for node in ctx.nodes(ast.BinOp):
            reason = self._quorum_shape(node)
            if reason is None:
                continue
            fn = _enclosing_function(ctx, node)
            if fn is not None and fn in project.canonical_quorum_defs:
                continue  # this *is* a canonical derivation site
            if node.lineno in reported:
                continue  # one finding per line (2*f+1 matches twice)
            reported.add(node.lineno)
            yield ctx.finding(
                self,
                node,
                f"{reason} re-derives a quorum threshold; protocol code must "
                "flow it from types.quorum_size/max_faults or the "
                "Membership/ClanConfig properties",
            )
        for node in ctx.nodes(ast.Compare):
            count_name = self._magic_literal_compare(node)
            if count_name is None or node.lineno in reported:
                continue
            fn = _enclosing_function(ctx, node)
            if fn is not None and fn in project.canonical_quorum_defs:
                continue
            reported.add(node.lineno)
            yield ctx.finding(
                self,
                node,
                f"`{count_name}` is compared against a magic integer literal; "
                "thresholds on vote/supporter counts must come from the "
                "canonical quorum helpers",
            )

    # -- shape matching -------------------------------------------------------

    def _fault_ish(self, node: ast.AST) -> bool:
        name = _func_name(node)
        if name is not None and not isinstance(node, ast.Call):
            return bool(self._FAULTY.search(name))
        if isinstance(node, ast.Call):
            return _func_name(node.func) in self._FAULT_CALLS
        return False

    def _size_ish(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Call):
            if _func_name(node.func) != "len" or not node.args:
                return False
            inner = _func_name(node.args[0])
            return inner is not None and bool(self._MEMBERY.search(inner))
        name = _func_name(node)
        return name is not None and bool(self._SIZEY.search(name))

    @staticmethod
    def _const(node: ast.AST, value: int) -> bool:
        return isinstance(node, ast.Constant) and node.value == value

    def _quorum_shape(self, node: ast.BinOp) -> str | None:
        left, right = node.left, node.right
        if isinstance(node.op, ast.Mult):
            # 2 * f (the inner half of 2f+1)
            if (self._const(left, 2) and self._fault_ish(right)) or (
                self._const(right, 2) and self._fault_ish(left)
            ):
                return "`2*f`"
        if isinstance(node.op, ast.Add):
            # f + 1 / 2*f + 1
            for a, b in ((left, right), (right, left)):
                if not self._const(b, 1):
                    continue
                if self._fault_ish(a):
                    return "`f + 1`"
                if (
                    isinstance(a, ast.BinOp)
                    and isinstance(a.op, ast.Mult)
                    and self._quorum_shape(a)
                ):
                    return "`2*f + 1`"
                # x // 2 + 1 majority
                if (
                    isinstance(a, ast.BinOp)
                    and isinstance(a.op, ast.FloorDiv)
                    and self._size_ish(a.left)
                    and self._const(a.right, 2)
                ):
                    return "`x // 2 + 1`"
        if isinstance(node.op, ast.Sub):
            # n - f
            if self._size_ish(left) and self._fault_ish(right):
                return "`n - f`"
        if isinstance(node.op, ast.FloorDiv):
            # (x + 1) // 2 majority
            if (
                self._const(right, 2)
                and isinstance(left, ast.BinOp)
                and isinstance(left.op, ast.Add)
                and (
                    (self._size_ish(left.left) and self._const(left.right, 1))
                    or (self._size_ish(left.right) and self._const(left.left, 1))
                )
            ):
                return "`(x + 1) // 2`"
        return None

    def _magic_literal_compare(self, node: ast.Compare) -> str | None:
        """``len(votes) >= 3``-style comparisons: the name being counted,
        or None.  Literals below 2 are structural (“non-empty”), not
        thresholds."""
        operands = [node.left, *node.comparators]
        magic = any(
            isinstance(o, ast.Constant)
            and isinstance(o.value, int)
            and not isinstance(o.value, bool)
            and o.value >= 2
            for o in operands
        )
        if not magic:
            return None
        for operand in operands:
            if (
                isinstance(operand, ast.Call)
                and _func_name(operand.func) == "len"
                and operand.args
            ):
                inner = _func_name(operand.args[0])
                if inner and self._COUNTY.search(inner):
                    return f"len({inner})"
            else:
                name = _func_name(operand)
                if name and self._COUNTY.search(name) and name.endswith("count"):
                    return name
        return None


class RngStreamRule:
    """RNG001: the static twin of the runtime stream-collision sanitizer.

    Every ``make_rng`` call site is enumerated project-wide and its label
    tuple resolved to constants where possible.  Two non-``shared`` sites
    whose resolved labels can coincide at runtime would consume the same
    deterministic sequence — the coupling named streams exist to prevent —
    and a dynamic *first* label defeats both this pass and any reader
    auditing stream usage, so it is flagged even without a collision.
    """

    rule_id = "RNG001"
    severity = "error"
    summary = "make_rng stream collision or unresolvable stream name"
    requires_project = True

    def check(self, ctx: FileContext, project: ProjectContext) -> Iterable[Finding]:
        for site in rng_sites_in(ctx):
            yield from self._check_site(ctx, project, site)

    def _check_site(
        self, ctx: FileContext, project: ProjectContext, site: RngSite
    ) -> Iterable[Finding]:
        if not site.labels:
            yield self._finding(
                ctx,
                site,
                "make_rng(...) without a stream label draws from the bare "
                "master seed; name the stream (make_rng(seed, \"purpose\"))",
                "error",
            )
            return
        if site.first_label is None:
            yield self._finding(
                ctx,
                site,
                "dynamic first stream label escapes static resolution; make "
                "the first label a string constant naming the stream's "
                "purpose and pass varying parts (ids, rounds) as later labels",
                "warning",
            )
            return
        for other in project.rng_collisions(site):
            if site.shared and other.shared:
                continue  # both declared common knowledge — the contract
            where = f"{other.path}:{other.line}"
            if site.shared != other.shared:
                yield self._finding(
                    ctx,
                    site,
                    f"stream `{site.first_label}` is derived both shared and "
                    f"exclusive (other site: {where}); pick one contract for "
                    "the label",
                    "error",
                )
            elif site.fully_constant and other.fully_constant:
                yield self._finding(
                    ctx,
                    site,
                    f"stream labels {site.labels} collide with {where}; two "
                    "components would consume the same deterministic "
                    "sequence — add a distinguishing label or declare "
                    "shared=True",
                    "error",
                )
            else:
                yield self._finding(
                    ctx,
                    site,
                    f"stream `{site.first_label}` may collide with {where} "
                    "(dynamic labels cannot be proven distinct); use "
                    "distinct first labels per component",
                    "warning",
                )

    def _finding(
        self, ctx: FileContext, site: RngSite, message: str, severity: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            severity=severity,
            path=ctx.path,
            line=site.line,
            col=site.col,
            message=message,
            snippet=ctx.snippet(site.line),
        )


class MessageDispatchRule:
    """MSG003: every constructed message has a reachable handler, and
    handlers only read fields the message declares.

    A ``Message`` subclass constructed but absent from every dispatch table
    and every ``isinstance`` chain reachable from a ``Network.register``
    root is silently dropped at delivery — the protocol just stalls.  The
    converse bug, a handler reading a field that was renamed away, raises
    only on the first delivery of that message type under exactly the right
    scenario.  Both are cheap to prove statically from the project tables.
    """

    rule_id = "MSG003"
    severity = "error"
    summary = "message constructed without a reachable handler / stale field read"
    requires_project = True

    def check(self, ctx: FileContext, project: ProjectContext) -> Iterable[Finding]:
        for node in ctx.nodes(ast.Call):
            name = _func_name(node.func)
            if name in project.message_classes and name not in project.handled_messages:
                yield ctx.finding(
                    self,
                    node,
                    f"`{name}(...)` is constructed but no handler for "
                    f"`{name}` is reachable via Network.register/"
                    "set_dispatch — it would be silently dropped at delivery",
                )
        yield from self._stale_field_reads(ctx, project)

    def _stale_field_reads(
        self, ctx: FileContext, project: ProjectContext
    ) -> Iterable[Finding]:
        for fn in ctx.nodes(ast.FunctionDef, ast.AsyncFunctionDef):
            args = fn.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if arg.annotation is None:
                    continue
                ann = _func_name(arg.annotation)
                if ann == "Message" or ann not in project.message_classes:
                    continue
                fields = project.message_fields.get(ann, frozenset())
                reported: set[str] = set()
                for sub in ast.walk(fn):
                    if (
                        isinstance(sub, ast.Attribute)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == arg.arg
                        and isinstance(sub.ctx, ast.Load)
                        and sub.attr not in fields
                        and sub.attr not in reported
                    ):
                        reported.add(sub.attr)
                        yield ctx.finding(
                            self,
                            sub,
                            f"handler reads `{arg.arg}.{sub.attr}` but "
                            f"`{ann}` declares no field or method "
                            f"`{sub.attr}` — stale read, AttributeError at "
                            "first delivery",
                        )


class InterprocSinkRule:
    """DET005: DET003 through the call graph.

    DET003 escalates an unordered iteration to *error* when the loop body
    itself sends/schedules/draws.  That misses the common refactor where the
    body calls ``self._emit(p)`` and the sink lives two hops away — the
    event order is exactly as hash-dependent.  This rule follows the
    project call graph from every call in the loop body to the order sinks
    and escalates when any path exists.
    """

    rule_id = "DET005"
    severity = "error"
    summary = "unordered iteration reaches an order sink through the call graph"
    requires_project = True

    def __init__(self) -> None:
        self._det3 = UnsortedSetIterRule()

    def check(self, ctx: FileContext, project: ProjectContext) -> Iterable[Finding]:
        for scope in _scope_nodes(ctx):
            set_vars = self._det3._set_assignments(scope)
            for node in _walk_scope(scope):
                if not isinstance(node, (ast.For, ast.AsyncFor)):
                    continue
                reason = self._det3._unordered_reason(node.iter, set_vars)
                if reason is None:
                    continue
                if self._det3._body_sink(node.body) is not None:
                    continue  # direct sink: DET003 already errors here
                hop = self._reaching_call(node.body, project)
                if hop is None:
                    continue
                callee, sink = hop
                yield ctx.finding(
                    self,
                    node.iter,
                    f"iteration over {reason} calls `{callee}(...)`, which "
                    f"reaches `{sink}(...)` through the call graph — event "
                    "order becomes hash/insertion dependent; wrap the "
                    "iterable in sorted(...)",
                )

    @staticmethod
    def _reaching_call(
        body: list[ast.stmt], project: ProjectContext
    ) -> tuple[str, str] | None:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    name = _func_name(node.func)
                    if name is None or name in ORDER_SINKS:
                        continue
                    sink = project.sink_reachers.get(name)
                    if sink is not None:
                        return name, sink
        return None


def flow_rules() -> list:
    """The interprocedural rule pack, in rule-id order."""
    return [
        InterprocSinkRule(),
        MessageDispatchRule(),
        QuorumDerivationRule(),
        RngStreamRule(),
    ]
