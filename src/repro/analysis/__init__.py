"""Determinism & protocol-invariant analysis.

Two halves, one contract:

* :mod:`repro.analysis.engine` + :mod:`repro.analysis.rules` — the static
  AST pass behind ``python -m repro analyze`` (DET/MSG/SIM rule pack,
  inline suppressions, committed baseline).
* :mod:`repro.analysis.sanitizers` — opt-in runtime checks
  (``REPRO_SANITIZE=1``): freeze-after-send, RNG stream-collision
  detection, scheduler tie-order audit.

This package init stays import-light on purpose: the scheduler, network,
and RNG layers import :mod:`~repro.analysis.sanitizers` on their hot
construction paths, and must not drag the whole rule engine with it.
"""

from . import sanitizers

__all__ = ["sanitizers"]
