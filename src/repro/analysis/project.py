"""Whole-program context for interprocedural analysis rules.

The per-file rules in :mod:`repro.analysis.rules` see one parsed module at a
time, which is enough for "never call ``random.random``" but blind to the
invariants that actually hold the protocol together: quorum thresholds are
derived in ``types.py`` and *used* three packages away, ``make_rng`` stream
labels must be globally collision-free, and a ``Message`` subclass is only as
alive as the dispatch table that routes it.  :class:`ProjectContext` is the
one-pass summary of the whole source tree that the flow rules
(:mod:`repro.analysis.flow_rules`) consult for those cross-module facts.

Design constraints:

* **Built once, consulted per file.**  Construction parses every module a
  single time and keeps only plain-data summary tables (symbol tables, a
  name-based call graph, message field sets, the RNG stream inventory) —
  no AST nodes survive, so the context pickles cleanly for the CI cache.
* **Name-based, over-approximate call graph.**  ``self._flush()`` resolves
  to *every* function named ``_flush`` in the program.  Over-approximation
  errs toward reachability, which for the rules built on it (MSG003 handler
  reachability, DET005 sink reachability) means fewer false positives, never
  missed handlers.
* **Content-addressed cache.**  :func:`load_project` keys a pickle of the
  context on a digest over every analyzed file (same scheme as
  ``results/.cache``): any source edit is a miss by construction, so a stale
  hit is impossible.
"""

from __future__ import annotations

import ast
import hashlib
import os
import pickle
from dataclasses import dataclass, field
from typing import Iterable

from .engine import SKIP_DIRS, FileContext

#: Call names that make iteration order protocol-visible (kept in sync with
#: :data:`repro.analysis.rules._ORDER_SINKS` by ``tests/analysis``).
ORDER_SINKS = frozenset(
    {
        "send",
        "multicast",
        "broadcast",
        "schedule",
        "schedule_at",
        "post",
        "start",
        "random",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "randint",
        "randrange",
        "uniform",
        "gauss",
    }
)

#: Attributes every ``Message`` provides (base-class slots + API), available
#: even when the base class itself is outside the analyzed source set.
MESSAGE_BASE_ATTRS = frozenset(
    {"_wire_size_memo", "wire_size", "wire_size_cached", "kind", "signed"}
)

#: Modules whose function/property definitions are the *canonical* quorum
#: derivations; everything else must call them instead of re-deriving.
CANONICAL_QUORUM_MODULES = (
    "repro.types",
    "repro.committees.config",
    "repro.rbc.base",
)

#: Helper names treated as canonical even when their defining module is not
#: in the analyzed set (unit-test fixtures analyze single files).
CANONICAL_QUORUM_NAMES = frozenset(
    {
        "max_faults",
        "quorum_size",
        "clan_max_faults",
        "clan_response_quorum",
        "quorum",
        "clan_quorum",
        "ready_amplify",
        "clan_faults",
        "clan_echo_quorum",
        "clan_client_quorum",
        "validate_tribe",
    }
)


@dataclass(frozen=True)
class RngSite:
    """One static ``make_rng(master, *labels)`` call site."""

    path: str
    line: int
    col: int
    #: Resolved label values; ``None`` marks a dynamic (unresolvable) label.
    labels: tuple
    shared: bool

    @property
    def first_label(self):
        return self.labels[0] if self.labels else None

    @property
    def fully_constant(self) -> bool:
        return all(label is not None for label in self.labels)


@dataclass(frozen=True)
class ClassInfo:
    """Summary of one class definition."""

    name: str
    module: str
    path: str
    line: int
    #: Terminal names of the declared bases (``net.Message`` → ``Message``).
    bases: tuple[str, ...]
    #: Declared fields: dataclass/annotated fields, class-level assignments,
    #: ``__slots__`` entries, and ``self.X = ...`` targets in methods.
    fields: frozenset[str]
    #: Method and property names defined in the class body.
    methods: frozenset[str]


@dataclass(frozen=True)
class FunctionInfo:
    """Summary of one function/method definition."""

    name: str
    qualname: str  # module.[Class.]name
    module: str
    path: str
    line: int
    cls: str | None
    #: Terminal names of every call in the body (``self.net.send`` → ``send``).
    calls: frozenset[str]
    #: Parameter name → terminal annotation name, for annotated params.
    param_types: tuple[tuple[str, str], ...] = ()
    #: Class names appearing in ``isinstance(x, C)`` checks in the body.
    isinstance_classes: frozenset[str] = frozenset()


def _terminal_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def rng_sites_in(ctx: FileContext) -> list[RngSite]:
    """Every ``make_rng`` call site in one file, labels resolved to constants
    where possible (shared with RNG001, so the static inventory and the rule
    agree on what a site is)."""
    sites: list[RngSite] = []
    for node in ctx.nodes(ast.Call):
        name = _terminal_name(node.func)
        if name != "make_rng":
            continue
        labels = []
        for arg in node.args[1:]:
            if isinstance(arg, ast.Constant):
                labels.append(str(arg.value))
            else:
                labels.append(None)  # dynamic: node ids, round numbers, ...
        shared = any(
            kw.arg == "shared"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        )
        sites.append(
            RngSite(
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset + 1,
                labels=tuple(labels),
                shared=shared,
            )
        )
    return sites


def _module_name(path: str) -> str:
    """``src/repro/sim/rng.py`` → ``repro.sim.rng`` (best-effort for
    out-of-tree fixture paths: strip ``.py``, slashes become dots)."""
    norm = path.replace("\\", "/")
    if norm.endswith(".py"):
        norm = norm[:-3]
    parts = [p for p in norm.split("/") if p and p != "."]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class ProjectContext:
    """Cross-module summary tables for the interprocedural rules."""

    #: module name → repo-relative path
    modules: dict[str, str] = field(default_factory=dict)
    #: class name → every definition with that name (names are unique in
    #: practice; collisions are merged conservatively)
    classes: dict[str, list[ClassInfo]] = field(default_factory=dict)
    #: function name → every definition with that name
    functions: dict[str, list[FunctionInfo]] = field(default_factory=dict)
    rng_sites: list[RngSite] = field(default_factory=list)
    #: names of classes transitively subclassing ``Message``
    message_classes: frozenset[str] = frozenset()
    #: message class name → readable attributes (fields ∪ methods ∪ inherited)
    message_fields: dict[str, frozenset[str]] = field(default_factory=dict)
    #: message class names with a handler reachable from Network
    #: registration (dispatch-table keys or isinstance checks in the
    #: handler call-graph closure)
    handled_messages: frozenset[str] = frozenset()
    #: function names that transitively reach an order sink, mapped to one
    #: example sink name (for diagnostics)
    sink_reachers: dict[str, str] = field(default_factory=dict)
    #: function names exempt from QRM001 (the canonical quorum derivations)
    canonical_quorum_defs: frozenset[str] = frozenset()
    #: digest of the analyzed sources (cache key; empty for from_sources)
    digest: str = ""

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "ProjectContext":
        """Build from in-memory ``{path: source}`` (the unit-test entry
        point).  Files that fail to parse are skipped — the per-file engine
        already reports parse errors."""
        project = cls()
        registrations: list[tuple[str, str]] = []  # (path, root function name)
        dispatch_keys: set[str] = set()
        for path, source in sorted(sources.items()):
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                continue
            ctx = FileContext(path.replace(os.sep, "/"), source, tree)
            project._ingest(ctx, registrations, dispatch_keys)
        project._finalize(registrations, dispatch_keys)
        return project

    @classmethod
    def build(cls, paths: Iterable[str], root: str | None = None) -> "ProjectContext":
        """Build over files/directory trees on disk (mirrors
        ``Analyzer.run``'s walk, so both passes see the same file set)."""
        sources = _collect_sources(paths, root)
        project = cls.from_sources(sources)
        project.digest = _digest_sources(sources)
        return project

    def _ingest(
        self,
        ctx: FileContext,
        registrations: list[tuple[str, str]],
        dispatch_keys: set[str],
    ) -> None:
        module = _module_name(ctx.path)
        self.modules[module] = ctx.path
        self.rng_sites.extend(rng_sites_in(ctx))

        for node in ctx.nodes(ast.ClassDef):
            info = self._class_info(ctx, module, node)
            self.classes.setdefault(info.name, []).append(info)

        for node in ctx.nodes(ast.FunctionDef, ast.AsyncFunctionDef):
            info = self._function_info(ctx, module, node)
            self.functions.setdefault(info.name, []).append(info)

        # Handler roots: the callable handed to ``.register(node_id, fn)``
        # and every value in a ``.set_dispatch(node_id, {...})`` table.
        for node in ctx.nodes(ast.Call):
            name = _terminal_name(node.func)
            if name == "register" and len(node.args) >= 2:
                self._note_handler_root(ctx, node.args[1], registrations)
            elif name == "set_dispatch" and len(node.args) >= 2:
                table = node.args[1]
                if isinstance(table, ast.Dict):
                    for value in table.values:
                        self._note_handler_root(ctx, value, registrations)

        # Dispatch-table keys: ``{VertexEchoMsg: self._on_echo}`` dict
        # literals and ``table[NoVoteMsg] = handler`` subscript stores.
        for node in ctx.nodes(ast.Dict):
            for key, value in zip(node.keys, node.values):
                key_name = _terminal_name(key) if key is not None else None
                if key_name and key_name[:1].isupper() and _is_callable_ref(value):
                    dispatch_keys.add(key_name)
                    self._note_handler_root(ctx, value, registrations)
        for node in ctx.nodes(ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    key_name = _terminal_name(target.slice)
                    if key_name and key_name[:1].isupper():
                        dispatch_keys.add(key_name)
                        self._note_handler_root(ctx, node.value, registrations)

    @staticmethod
    def _note_handler_root(
        ctx: FileContext, node: ast.AST, registrations: list[tuple[str, str]]
    ) -> None:
        if isinstance(node, ast.Lambda):
            # ``register(nid, lambda src, m: self._on_raw(nid, src, m))`` —
            # the lambda body's calls are the real roots.
            for sub in ast.walk(node.body):
                if isinstance(sub, ast.Call):
                    name = _terminal_name(sub.func)
                    if name:
                        registrations.append((ctx.path, name))
            return
        name = _terminal_name(node)
        if name:
            registrations.append((ctx.path, name))

    @staticmethod
    def _class_info(ctx: FileContext, module: str, node: ast.ClassDef) -> ClassInfo:
        bases = tuple(
            name for name in (_terminal_name(b) for b in node.bases) if name
        )
        fields: set[str] = set()
        methods: set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                fields.add(stmt.target.id)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        fields.add(target.id)
                        if target.id == "__slots__":
                            fields.update(_slot_names(stmt.value))
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.add(stmt.name)
                # ``self.X = ...`` in any method declares a field too.
                for sub in ast.walk(stmt):
                    if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                        targets = (
                            sub.targets
                            if isinstance(sub, ast.Assign)
                            else [sub.target]
                        )
                        for target in targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                fields.add(target.attr)
        return ClassInfo(
            name=node.name,
            module=module,
            path=ctx.path,
            line=node.lineno,
            bases=bases,
            fields=frozenset(fields),
            methods=frozenset(methods),
        )

    @staticmethod
    def _function_info(
        ctx: FileContext, module: str, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> FunctionInfo:
        cls_name = None
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                cls_name = ancestor.name
                break
        calls: set[str] = set()
        isinstance_classes: set[str] = set()
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            name = _terminal_name(sub.func)
            if name is None:
                continue
            calls.add(name)
            if name == "isinstance" and len(sub.args) == 2:
                isinstance_classes.update(_class_refs(sub.args[1]))
        params = []
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None:
                ann = _terminal_name(arg.annotation)
                if ann:
                    params.append((arg.arg, ann))
        qual = f"{module}.{cls_name}.{node.name}" if cls_name else f"{module}.{node.name}"
        return FunctionInfo(
            name=node.name,
            qualname=qual,
            module=module,
            path=ctx.path,
            line=node.lineno,
            cls=cls_name,
            calls=frozenset(calls),
            param_types=tuple(params),
            isinstance_classes=frozenset(isinstance_classes),
        )

    def _finalize(
        self, registrations: list[tuple[str, str]], dispatch_keys: set[str]
    ) -> None:
        self.message_classes = self._message_closure()
        self.message_fields = {
            name: self._field_closure(name) for name in self.message_classes
        }
        self.handled_messages = frozenset(
            dispatch_keys & self.message_classes
        ) | self._isinstance_handled(registrations)
        self.sink_reachers = self._sink_closure()
        self.canonical_quorum_defs = self._canonical_defs()

    def _message_closure(self) -> frozenset[str]:
        known: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, infos in self.classes.items():
                if name in known or name == "Message":
                    continue
                for info in infos:
                    if any(b == "Message" or b in known for b in info.bases):
                        known.add(name)
                        changed = True
                        break
        return frozenset(known)

    def _field_closure(self, name: str, _seen: frozenset[str] = frozenset()) -> frozenset[str]:
        attrs: set[str] = set(MESSAGE_BASE_ATTRS)
        for info in self.classes.get(name, ()):
            attrs |= info.fields | info.methods
            for base in info.bases:
                if base != name and base not in _seen and base in self.classes:
                    attrs |= self._field_closure(base, _seen | {name})
        attrs.discard("__slots__")
        return frozenset(attrs)

    def _isinstance_handled(
        self, registrations: list[tuple[str, str]]
    ) -> frozenset[str]:
        """Message classes isinstance-checked in a function reachable (via
        the name-based call graph) from a handler registration root."""
        reachable: set[str] = {name for _path, name in registrations}
        frontier = list(reachable)
        while frontier:
            fn_name = frontier.pop()
            for info in self.functions.get(fn_name, ()):
                for callee in info.calls:
                    if callee in self.functions and callee not in reachable:
                        reachable.add(callee)
                        frontier.append(callee)
        handled: set[str] = set()
        for fn_name in reachable:
            for info in self.functions.get(fn_name, ()):
                handled |= info.isinstance_classes & self.message_classes
        return frozenset(handled)

    def _sink_closure(self) -> dict[str, str]:
        """Function name → example sink it (transitively) reaches."""
        reaches: dict[str, str] = {}
        changed = True
        while changed:
            changed = False
            for name, infos in self.functions.items():
                if name in reaches:
                    continue
                for info in infos:
                    direct = info.calls & ORDER_SINKS
                    if direct:
                        reaches[name] = sorted(direct)[0]
                        changed = True
                        break
                    via = next(
                        (c for c in sorted(info.calls) if c in reaches), None
                    )
                    if via is not None:
                        reaches[name] = reaches[via]
                        changed = True
                        break
        return reaches

    def _canonical_defs(self) -> frozenset[str]:
        names = set(CANONICAL_QUORUM_NAMES)
        for fn_name, infos in self.functions.items():
            if fn_name.startswith("_"):
                continue  # dunders/private helpers are not threshold API
            for info in infos:
                if info.module in CANONICAL_QUORUM_MODULES:
                    names.add(fn_name)
        return frozenset(names)

    # -- queries --------------------------------------------------------------

    def reaches_sink(self, func_name: str) -> str | None:
        """The sink name a function transitively reaches, or ``None``."""
        if func_name in ORDER_SINKS:
            return func_name
        return self.sink_reachers.get(func_name)

    def rng_collisions(self, site: RngSite) -> list[RngSite]:
        """Other sites whose streams can collide with ``site`` at runtime."""
        out = []
        for other in self.rng_sites:
            if (other.path, other.line, other.col) == (site.path, site.line, site.col):
                continue
            if site.first_label is None or other.first_label != site.first_label:
                continue
            if len(other.labels) != len(site.labels):
                continue  # tuples of different arity never compare equal
            if all(
                a == b
                for a, b in zip(site.labels, other.labels)
                if a is not None and b is not None
            ):
                out.append(other)
        return out


def _is_callable_ref(node: ast.AST) -> bool:
    """Heuristic: does a dict value look like a handler (method ref, bare
    function name, or lambda) rather than data?"""
    return isinstance(node, (ast.Attribute, ast.Name, ast.Lambda))


def _class_refs(node: ast.AST) -> set[str]:
    """Class names referenced by an isinstance second argument (bare name,
    attribute, or tuple of either)."""
    out: set[str] = set()
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    for sub in nodes:
        name = _terminal_name(sub)
        if name:
            out.add(name)
    return out


def _slot_names(node: ast.AST) -> set[str]:
    out: set[str] = set()
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.add(elt.value)
    return out


def _read(path: str) -> str:
    with open(path, encoding="utf-8") as fh:
        return fh.read()


def _collect_sources(paths: Iterable[str], root: str | None = None) -> dict[str, str]:
    """Read every ``.py`` under the targets, keyed by root-relative path
    (the same walk order and skip set as ``Analyzer.run``)."""
    sources: dict[str, str] = {}
    root = os.path.abspath(root or os.getcwd())
    for path in paths:
        full = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(full):
            sources[os.path.relpath(full, root)] = _read(full)
            continue
        if not os.path.isdir(full):
            continue  # Analyzer.run already errors on missing targets
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames[:] = sorted(d for d in dirnames if d not in SKIP_DIRS)
            for name in sorted(filenames):
                if name.endswith(".py"):
                    filepath = os.path.join(dirpath, name)
                    sources[os.path.relpath(filepath, root)] = _read(filepath)
    return sources


# -- content-addressed cache --------------------------------------------------


def _digest_sources(sources: dict[str, str]) -> str:
    """Digest over every (path, content) pair, order-independent via sort —
    the same exact-match key scheme as ``results/.cache``."""
    h = hashlib.sha256()
    for path in sorted(sources):
        h.update(path.replace(os.sep, "/").encode())
        h.update(b"\0")
        h.update(sources[path].encode("utf-8", "backslashreplace"))
        h.update(b"\0")
    return h.hexdigest()


def cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1") != "0"


def load_project(
    paths: Iterable[str],
    root: str | None = None,
    cache_dir: str = os.path.join("results", ".cache"),
) -> ProjectContext:
    """Build (or load from the content-addressed cache) a project context.

    The cache key is the digest of every analyzed source file, so edits
    invalidate by construction; ``REPRO_CACHE=0`` disables the cache both
    ways.  Corrupt or unreadable cache entries fall back to a fresh build.
    """
    sources = _collect_sources(paths, root)
    digest = _digest_sources(sources)
    cache_file = os.path.join(cache_dir, f"analysis_project_{digest[:32]}.pkl")
    if cache_enabled() and os.path.exists(cache_file):
        try:
            with open(cache_file, "rb") as fh:
                cached = pickle.load(fh)
            if isinstance(cached, ProjectContext) and cached.digest == digest:
                return cached
        except Exception:
            pass  # corrupt entry: fall through to a fresh build
    project = ProjectContext.from_sources(sources)
    project.digest = digest
    if cache_enabled():
        try:
            os.makedirs(cache_dir, exist_ok=True)
            tmp = f"{cache_file}.tmp.{os.getpid()}"
            with open(tmp, "wb") as fh:
                pickle.dump(project, fh)
            os.replace(tmp, cache_file)
        except OSError:
            pass  # best-effort; the analysis itself never depends on the cache
    return project
