"""SARIF 2.1.0 export for ``python -m repro analyze --sarif PATH``.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests: uploading the file from the CI ``analyze`` job turns each
finding into an inline PR annotation at the offending line.  Only the
*new* (non-baselined) findings are exported — grandfathered ones would
re-annotate every PR forever.
"""

from __future__ import annotations

import json
from typing import Iterable

from .engine import Finding

#: repro-analyze severity → SARIF level.
_LEVELS = {"error": "error", "warning": "warning"}

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def sarif_report(findings: Iterable[Finding], rules: Iterable[object]) -> dict:
    """Build the SARIF document as a plain dict (one run, one driver)."""
    rule_meta = []
    seen: set[str] = set()
    for rule in rules:
        rule_id = getattr(rule, "rule_id", None)
        if rule_id is None or rule_id in seen:
            continue
        seen.add(rule_id)
        rule_meta.append(
            {
                "id": rule_id,
                "shortDescription": {"text": getattr(rule, "summary", rule_id)},
                "defaultConfiguration": {
                    "level": _LEVELS.get(getattr(rule, "severity", "warning"), "warning")
                },
            }
        )
    results = [
        {
            "ruleId": finding.rule,
            "level": _LEVELS.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                            "snippet": {"text": finding.snippet},
                        },
                    }
                }
            ],
            # Stable fingerprint so code scanning tracks a finding across
            # pushes the same way the baseline does: rule + path + snippet.
            "partialFingerprints": {
                "reproAnalyzeKey/v1": "|".join(finding.baseline_key)
            },
        }
        for finding in findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri": "docs/ANALYSIS.md",
                        "rules": rule_meta,
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(path: str, findings: Iterable[Finding], rules: Iterable[object]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(sarif_report(findings, rules), fh, indent=2)
        fh.write("\n")
